//! The VE-cache workload optimization scheme (Section 6, Algorithm 3).
//!
//! Given an MPF view and a workload of single-variable queries, VE-cache
//! materializes a set `S` of tables satisfying the Definition 5 correctness
//! invariant: a query on variable `X` can be answered from *any* cached
//! table containing `X`, with the same result as evaluating it against the
//! full view.
//!
//! The construction follows Algorithm 3 literally:
//!
//! 1. execute a **no-query-variable** Variable Elimination plan, caching
//!    every table that precedes a `GroupBy` node (these are exactly the
//!    cliques of the triangulation induced by the elimination order —
//!    Theorem 10);
//! 2. run the backward pass: for each cached table `t_j` (newest first) and
//!    each earlier `t_i` whose `GroupBy` fed `t_j`'s join, compute
//!    `t_i ⋉ t_j` (update semijoin).
//!
//! The producer/consumer edges recorded in step 1 form a join tree over the
//! cache (verified by [`VeCache::verify_tree_rip`] in tests), which is what
//! makes the restricted-range evidence protocol of Theorem 5 work: apply
//! the selection to one cached table, then propagate update-semijoin
//! reductions outward along the tree.

use std::collections::BTreeSet;

use mpf_algebra::ExecContext;
use mpf_semiring::SemiringKind;
use mpf_storage::{FunctionalRelation, Value, VarId};

use crate::triangulate::min_fill_order;
use crate::{InferError, JoinTree, Result, VariableGraph};

/// A single-variable workload query with an occurrence probability
/// (the workload model of Section 6).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadQuery {
    /// The query variable.
    pub var: VarId,
    /// Optional equality predicates (restricted-answer form).
    pub predicates: Vec<(VarId, Value)>,
    /// Likelihood of a user posing this query.
    pub probability: f64,
}

/// A materialized cache of reduced tables satisfying the workload
/// correctness invariant (Definition 5).
#[derive(Debug, Clone)]
pub struct VeCache {
    semiring: SemiringKind,
    tables: Vec<FunctionalRelation>,
    /// Producer edges `(i, j)`: `GroupBy(tables[i])` was an input of the
    /// join that created `tables[j]`.
    edges: Vec<(usize, usize)>,
    /// The elimination order used.
    order: Vec<VarId>,
    /// Base relation names, in build order.
    base_names: Vec<String>,
    /// Base relation schemas, parallel to `base_names`.
    base_schemas: Vec<mpf_storage::Schema>,
    /// For each base relation, the cached table whose join consumed it
    /// (`None` for zero-arity bases that never join).
    base_consumer: Vec<Option<usize>>,
}

/// Where a live VE factor came from during the forward pass.
enum Origin {
    /// The `i`th input base relation.
    Base(usize),
    /// The group-by output of cached table `i`.
    Cached(usize),
}

impl VeCache {
    /// Build the cache from the view's base relations (Algorithm 3) inside
    /// a caller-owned [`ExecContext`], so budgets, deadlines, cancellation,
    /// fault hooks, and tracing cover the whole construction and its work
    /// lands in the caller's stats. With `order = None` a min-fill order
    /// over the variable graph is used.
    ///
    /// # Errors
    /// [`InferError::Algebra`] if the semiring lacks division (the backward
    /// pass needs the update semijoin).
    pub fn build_in(
        cx: &mut ExecContext<'_>,
        rels: &[&FunctionalRelation],
        order: Option<&[VarId]>,
    ) -> Result<VeCache> {
        cx.span_phase("vecache::build");
        let result = VeCache::build_inner(cx, rels, order);
        cx.span_close(|| result.as_ref().err().map(|e| e.to_string()));
        result
    }

    fn build_inner(
        cx: &mut ExecContext<'_>,
        rels: &[&FunctionalRelation],
        order: Option<&[VarId]>,
    ) -> Result<VeCache> {
        cx.fault("vecache::build")?;
        let sr = cx.semiring();
        if !sr.has_division() {
            return Err(InferError::Algebra(mpf_algebra::AlgebraError::NoDivision));
        }
        let graph = VariableGraph::from_schemas(rels.iter().map(|r| r.schema()));
        let mut full_order: Vec<VarId> = match order {
            Some(o) => o.to_vec(),
            None => min_fill_order(&graph),
        };
        for v in graph.vertices() {
            if !full_order.contains(&v) {
                full_order.push(v);
            }
        }

        // Forward pass: VE with *all* variables as elimination candidates.
        // `factors` carries each live factor's origin (input base relation
        // or group-by output of a cached table).
        let mut factors: Vec<(FunctionalRelation, Origin)> = rels
            .iter()
            .enumerate()
            .map(|(i, r)| ((*r).clone(), Origin::Base(i)))
            .collect();
        let mut tables: Vec<FunctionalRelation> = Vec::new();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut base_consumer: Vec<Option<usize>> = vec![None; rels.len()];
        let mut leftover_scalars: Vec<(f64, Option<usize>)> = Vec::new();

        for &v in &full_order {
            let (group, rest): (Vec<_>, Vec<_>) = factors
                .drain(..)
                .partition(|(f, _)| f.schema().contains(v));
            factors = rest;
            if group.is_empty() {
                continue;
            }
            // Join rels(v), smallest first. The chain runs over
            // representation-polymorphic factors: under a sparse-friendly
            // `MPF_REPR` the intermediates stay CSR tensors between joins
            // and only materialize into rows once, for the cached table.
            let mut group = group;
            group.sort_by_key(|(f, _)| f.len());
            let j = tables.len();
            let mut iter = group.into_iter();
            let (first, first_origin) = iter.next().expect("nonempty");
            let mut joined = mpf_storage::Factor::from(first);
            let mut origins = vec![first_origin];
            for (f, origin) in iter {
                joined =
                    mpf_algebra::sparse::join_factor(cx, &joined, &mpf_storage::Factor::from(f))?;
                origins.push(origin);
            }
            for origin in origins {
                match origin {
                    Origin::Cached(i) => edges.push((i, j)),
                    Origin::Base(b) => base_consumer[b] = Some(j),
                }
            }
            let joined = mpf_algebra::sparse::materialize(cx, joined)?;
            // Cache the pre-GroupBy table.
            tables.push(joined.clone().with_name(format!("t{j}")));
            // Eliminate v.
            let keep: Vec<VarId> = joined.schema().iter().filter(|&u| u != v).collect();
            let p = mpf_algebra::sparse::agg_auto(cx, &joined, &keep)?;
            if p.schema().is_empty() {
                // Component fully eliminated; remember its total.
                let total = if p.is_empty() { sr.zero() } else { p.measure(0) };
                leftover_scalars.push((total, Some(j)));
            } else {
                factors.push((p, Origin::Cached(j)));
            }
        }
        // Base relations with empty schemas never join anything.
        for (f, origin) in factors {
            debug_assert!(f.schema().is_empty());
            let total = if f.is_empty() { sr.zero() } else { f.measure(0) };
            let root = match origin {
                Origin::Cached(i) => Some(i),
                Origin::Base(_) => None,
            };
            leftover_scalars.push((total, root));
        }

        let mut cache = VeCache {
            semiring: sr,
            tables,
            edges,
            order: full_order,
            base_names: rels.iter().map(|r| r.name().to_string()).collect(),
            base_schemas: rels.iter().map(|r| r.schema().clone()).collect(),
            base_consumer,
        };

        // Backward pass (lines 3–7 of Algorithm 3).
        for j in (0..cache.tables.len()).rev() {
            let children: Vec<usize> = cache
                .edges
                .iter()
                .filter(|&&(_, cj)| cj == j)
                .map(|&(i, _)| i)
                .collect();
            for i in children {
                cache.tables[i] = mpf_algebra::ops::update_semijoin(
                    cx,
                    &cache.tables[i],
                    &cache.tables[j],
                )?
                .with_name(format!("t{i}"));
            }
        }

        // Cross-component scaling, so Definition 5 holds against the *full*
        // (cross-product) view even when the schema is disconnected.
        cache.apply_component_scaling(&leftover_scalars)?;
        Ok(cache)
    }

    /// Build caches for several candidate elimination orders and keep the
    /// one minimizing the Section 6 workload objective
    /// `C(S) + E[cost(Q(q, S))]`.
    ///
    /// With `candidate_orders` empty, the min-fill and min-degree orders of
    /// the variable graph are tried. This is the cost-based instantiation
    /// of the paper's "MPF Workload Problem": the invariant guarantees any
    /// order is *correct*, so order choice is purely an optimization.
    pub fn build_for_workload(
        sr: SemiringKind,
        rels: &[&FunctionalRelation],
        workload: &[WorkloadQuery],
        candidate_orders: &[Vec<VarId>],
    ) -> Result<VeCache> {
        let defaults: Vec<Vec<VarId>>;
        let candidates: &[Vec<VarId>] = if candidate_orders.is_empty() {
            let graph = VariableGraph::from_schemas(rels.iter().map(|r| r.schema()));
            defaults = vec![
                min_fill_order(&graph),
                crate::triangulate::min_degree_order(&graph),
            ];
            &defaults
        } else {
            candidate_orders
        };
        let mut best: Option<(f64, VeCache)> = None;
        for order in candidates {
            let cache = VeCache::build_in(&mut ExecContext::new(sr), rels, Some(order))?;
            let cost = cache.expected_cost(workload);
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, cache));
            }
        }
        Ok(best.expect("at least one candidate order").1)
    }

    /// Scale every component's tables by the product of the *other*
    /// components' totals.
    fn apply_component_scaling(&mut self, scalars: &[(f64, Option<usize>)]) -> Result<()> {
        // Components keyed by root cache index (producer of the final
        // scalar); scalar factors from measure-only base relations have no
        // cached tables but still contribute their total.
        if scalars.len() <= 1 {
            return Ok(());
        }
        let comps = self.components();
        let comp_of = |table: usize| comps.iter().position(|c| c.contains(&table));
        for (k, &(_, root_k)) in scalars.iter().enumerate() {
            let other: f64 = self.semiring.product(
                scalars
                    .iter()
                    .enumerate()
                    .filter(|&(k2, _)| k2 != k)
                    .map(|(_, &(t, _))| t),
            );
            if let Some(root) = root_k {
                if let Some(ci) = comp_of(root) {
                    for &t in &comps[ci] {
                        crate::bp::scale(self.semiring, &mut self.tables[t], other);
                    }
                }
            }
        }
        Ok(())
    }

    /// The cached tables.
    pub fn tables(&self) -> &[FunctionalRelation] {
        &self.tables
    }

    /// The semiring the cache was built in.
    pub fn semiring(&self) -> SemiringKind {
        self.semiring
    }

    /// The elimination order used to build the cache.
    pub fn order(&self) -> &[VarId] {
        &self.order
    }

    /// Producer/consumer edges of the cache tree.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Total cached rows — the `C(S)` materialization-size term of the
    /// workload objective.
    pub fn total_cached_rows(&self) -> u64 {
        self.tables.iter().map(|t| t.len() as u64).sum()
    }

    /// Heap bytes owned by the cache: every cached table plus the tree
    /// bookkeeping (edges, order, base-relation names/schemas/consumer
    /// map), all charged at vector *capacity*. This is what a residency
    /// budget (the engine's `MPF_CACHE_BYTES` view cache) accounts per
    /// entry.
    pub fn heap_bytes(&self) -> usize {
        let tables: usize = self.tables.iter().map(FunctionalRelation::heap_bytes).sum();
        tables
            + self.tables.capacity() * std::mem::size_of::<FunctionalRelation>()
            + self.edges.capacity() * std::mem::size_of::<(usize, usize)>()
            + self.order.capacity() * std::mem::size_of::<VarId>()
            + self
                .base_names
                .iter()
                .map(String::capacity)
                .sum::<usize>()
            + self.base_names.capacity() * std::mem::size_of::<String>()
            + self
                .base_schemas
                .iter()
                .map(mpf_storage::Schema::heap_bytes)
                .sum::<usize>()
            + self.base_schemas.capacity() * std::mem::size_of::<mpf_storage::Schema>()
            + self.base_consumer.capacity() * std::mem::size_of::<Option<usize>>()
    }

    /// Index of the smallest cached table covering every variable in
    /// `vars` — the table [`VeCache::answer_set_in`] would marginalize —
    /// or [`InferError::VariableNotCovered`] when no single table does.
    /// Lets a caller test coverage (and size the marginalization) without
    /// running it.
    pub fn covering_table(&self, vars: &[VarId]) -> Result<usize> {
        self.best_table_for(vars)
    }

    /// Answer a single-variable MPF query from the cache: marginalize the
    /// smallest cached table containing `var`.
    pub fn answer(&self, var: VarId) -> Result<FunctionalRelation> {
        self.answer_in(&mut ExecContext::new(self.semiring), var)
    }

    /// [`VeCache::answer`] inside a caller-owned [`ExecContext`] (budgets,
    /// stats, and tracing apply).
    pub fn answer_in(
        &self,
        cx: &mut ExecContext<'_>,
        var: VarId,
    ) -> Result<FunctionalRelation> {
        self.answer_set_in(cx, &[var])
    }

    /// Answer a query on a variable *set* — succeeds when some cached table
    /// covers every requested variable.
    pub fn answer_set(&self, vars: &[VarId]) -> Result<FunctionalRelation> {
        self.answer_set_in(&mut ExecContext::new(self.semiring), vars)
    }

    /// [`VeCache::answer_set`] inside a caller-owned [`ExecContext`]
    /// (budgets, stats, and tracing apply).
    pub fn answer_set_in(
        &self,
        cx: &mut ExecContext<'_>,
        vars: &[VarId],
    ) -> Result<FunctionalRelation> {
        let idx = self.best_table_for(vars)?;
        Ok(mpf_algebra::sparse::agg_auto(cx, &self.tables[idx], vars)?)
    }

    fn best_table_for(&self, vars: &[VarId]) -> Result<usize> {
        (0..self.tables.len())
            .filter(|&i| vars.iter().all(|&v| self.tables[i].schema().contains(v)))
            .min_by_key(|&i| self.tables[i].len())
            .ok_or(InferError::VariableNotCovered(
                vars.first().copied().unwrap_or(VarId(u32::MAX)),
            ))
    }

    /// The restricted-range / constrained-domain protocol (Theorem 5):
    /// return a new cache conditioned on `var = value`. The selection is
    /// applied to one cached table containing `var`, then update-semijoin
    /// reductions are propagated outward along the cache tree.
    pub fn with_evidence(&self, var: VarId, value: Value) -> Result<VeCache> {
        let mut out = self.clone();
        let source = out.best_table_for(&[var])?;
        let old_total = out.table_total(source)?;
        out.tables[source] = mpf_algebra::ops::select_eq(
            &mut ExecContext::new(self.semiring),
            &out.tables[source],
            &[(var, value)],
        )?;
        out.repropagate_from(source, old_total)?;
        Ok(out)
    }

    /// [`VeCache::with_evidence`] chained over an evidence set: condition
    /// on every `(var, value)` pair in order. One conditioned tree is
    /// derived per pair; callers batching many scenarios with shared
    /// evidence should sort pairs so equal sets hit equal derivations.
    ///
    /// # Errors
    /// [`InferError::EmptyEvidence`] on an empty set; otherwise whatever
    /// [`VeCache::with_evidence`] raises for some pair.
    pub fn with_evidence_set(&self, evidence: &[(VarId, Value)]) -> Result<VeCache> {
        let mut iter = evidence.iter();
        let &(var, value) = iter.next().ok_or(InferError::EmptyEvidence)?;
        let mut out = self.with_evidence(var, value)?;
        for &(var, value) in iter {
            out = out.with_evidence(var, value)?;
        }
        Ok(out)
    }

    /// Incremental view maintenance: return a cache reflecting a changed
    /// measure of one row of a base relation (the materialize-and-maintain
    /// option the paper's introduction raises), without rebuilding.
    ///
    /// The base row's measure enters the view product exactly once — inside
    /// the cached table whose join consumed the base relation — so the
    /// update multiplies the matching rows of that table by
    /// `new / old` and repropagates update-semijoin reductions outward
    /// along the cache tree (the same recalibration as evidence
    /// conditioning).
    ///
    /// # Errors
    /// [`InferError::InvalidUpdate`] if the relation is unknown, the old
    /// measure is the additive identity (a `0 → x` change alters the view's
    /// support and needs a rebuild), or the semiring cannot express the
    /// ratio.
    pub fn update_measure(
        &self,
        relation: &str,
        row: &[Value],
        old: f64,
        new: f64,
    ) -> Result<VeCache> {
        let sr = self.semiring;
        let base = self
            .base_names
            .iter()
            .position(|n| n == relation)
            .ok_or_else(|| {
                InferError::InvalidUpdate(format!("unknown base relation `{relation}`"))
            })?;
        if old == sr.zero() {
            return Err(InferError::InvalidUpdate(
                "old measure is the additive identity; the update changes the view's \
                 support — rebuild the cache"
                    .into(),
            ));
        }
        let ratio = sr.div(new, old);
        let Some(source) = self.base_consumer[base] else {
            return Err(InferError::InvalidUpdate(format!(
                "base relation `{relation}` has no variables; rebuild the cache"
            )));
        };

        let mut out = self.clone();
        let old_total = out.table_total(source)?;
        // Multiply the consuming table's rows matching the base row.
        let positions = out.tables[source]
            .schema()
            .positions(self.base_schemas[base].vars())
            .expect("base variables are inside the consuming clique");
        let table = &mut out.tables[source];
        for i in 0..table.len() {
            let matches = positions
                .iter()
                .zip(row)
                .all(|(&p, &v)| table.row(i)[p] == v);
            if matches {
                let m = table.measure(i);
                table.set_measure(i, sr.mul(m, ratio));
            }
        }
        out.repropagate_from(source, old_total)?;
        Ok(out)
    }

    /// Total (zero-ary marginal) of a cached table.
    fn table_total(&self, idx: usize) -> Result<f64> {
        let t = mpf_algebra::ops::group_by(
            &mut ExecContext::new(self.semiring),
            &self.tables[idx],
            &[],
        )?;
        Ok(if t.is_empty() {
            self.semiring.zero()
        } else {
            t.measure(0)
        })
    }

    /// After `tables[source]` changed, push update-semijoin reductions
    /// outward along the cache tree and rescale other components by the
    /// total's change, restoring Definition 5.
    fn repropagate_from(&mut self, source: usize, old_total: f64) -> Result<()> {
        let sr = self.semiring;
        let tree = self.as_join_tree();
        let visited: Vec<usize> = tree.bfs_from(source).iter().map(|&(n, _)| n).collect();
        for (node, parent) in tree.bfs_from(source) {
            if let Some(p) = parent {
                self.tables[node] = mpf_algebra::ops::update_semijoin(
                    &mut ExecContext::new(sr),
                    &self.tables[node],
                    &self.tables[p],
                )?;
            }
        }
        // Tables in *other* components carry the old global total as a
        // factor; rescale them so Definition 5 keeps holding.
        let new_total = self.table_total(source)?;
        if visited.len() < self.tables.len() && new_total != old_total {
            let ratio = sr.div(new_total, old_total);
            for i in 0..self.tables.len() {
                if !visited.contains(&i) {
                    crate::bp::scale(sr, &mut self.tables[i], ratio);
                }
            }
        }
        Ok(())
    }

    /// Expected workload cost `C(S) + E[cost(Q(q, S))]` of Section 6, with
    /// per-query cost modeled as the rows of the cached table that answers
    /// it (a scan + group-by is linear in that size).
    pub fn expected_cost(&self, workload: &[WorkloadQuery]) -> f64 {
        let c_s = self.total_cached_rows() as f64;
        let e_cost: f64 = workload
            .iter()
            .map(|q| {
                let per = self
                    .best_table_for(&[q.var])
                    .map(|i| self.tables[i].len() as f64)
                    .unwrap_or(f64::INFINITY);
                q.probability * per
            })
            .sum();
        c_s + e_cost
    }

    /// View the producer edges as a [`JoinTree`] over the cached tables.
    pub fn as_join_tree(&self) -> JoinTree {
        JoinTree {
            n: self.tables.len(),
            edges: self.edges.clone(),
        }
    }

    /// Verify that the cache tree satisfies the running-intersection
    /// property over the cached table schemas (the Theorem 10 structure).
    pub fn verify_tree_rip(&self) -> bool {
        let sets: Vec<BTreeSet<VarId>> = self
            .tables
            .iter()
            .map(|t| t.schema().iter().collect())
            .collect();
        self.as_join_tree().verify_rip(&sets)
    }

    fn components(&self) -> Vec<Vec<usize>> {
        self.as_join_tree().components()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bp::satisfies_invariant;
    use mpf_semiring::approx_eq;
    use mpf_storage::{Catalog, Schema};

    /// The paper's running-example shape: a chain of 5 relations
    /// contracts(pid,sid) — location(pid,wid) — warehouses(wid,cid) —
    /// ctdeals(cid,tid) — transporters(tid), at toy scale.
    fn supply_chain(cat: &mut Catalog) -> Vec<FunctionalRelation> {
        let pid = cat.add_var("pid", 3).unwrap();
        let sid = cat.add_var("sid", 2).unwrap();
        let wid = cat.add_var("wid", 3).unwrap();
        let cid = cat.add_var("cid", 2).unwrap();
        let tid = cat.add_var("tid", 2).unwrap();
        let mk = |name: &str, vars: Vec<VarId>, salt: u32| {
            FunctionalRelation::complete(name, Schema::new(vars).unwrap(), cat, move |row| {
                ((row.iter().sum::<u32>() + salt) % 4 + 1) as f64 / 2.0
            })
        };
        vec![
            mk("contracts", vec![pid, sid], 0),
            mk("location", vec![pid, wid], 1),
            mk("warehouses", vec![wid, cid], 2),
            mk("ctdeals", vec![cid, tid], 3),
            mk("transporters", vec![tid], 4),
        ]
    }

    #[test]
    fn cache_satisfies_definition_5() {
        let mut cat = Catalog::new();
        let rels = supply_chain(&mut cat);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let cache = VeCache::build_in(&mut ExecContext::new(SemiringKind::SumProduct), &refs, None).unwrap();
        assert!(satisfies_invariant(SemiringKind::SumProduct, &refs, cache.tables()).unwrap());
        assert!(cache.verify_tree_rip());
    }

    #[test]
    fn paper_order_yields_three_main_tables() {
        // Figure 5's order tid, pid, cid (then sid, wid) gives cached tables
        // covering (cid,tid), (sid,pid,wid), (wid,cid) — the paper's
        // t3, t1, t2.
        let mut cat = Catalog::new();
        let rels = supply_chain(&mut cat);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let tid = cat.var("tid").unwrap();
        let pid = cat.var("pid").unwrap();
        let cid = cat.var("cid").unwrap();
        let cache =
            VeCache::build_in(&mut ExecContext::new(SemiringKind::SumProduct), &refs, Some(&[tid, pid, cid])).unwrap();
        let schemas: Vec<BTreeSet<VarId>> = cache
            .tables()
            .iter()
            .map(|t| t.schema().iter().collect())
            .collect();
        let sid = cat.var("sid").unwrap();
        let wid = cat.var("wid").unwrap();
        assert!(schemas.contains(&[cid, tid].into_iter().collect()));
        assert!(schemas.contains(&[sid, pid, wid].into_iter().collect()));
        assert!(schemas.contains(&[wid, cid].into_iter().collect()));
        assert!(satisfies_invariant(SemiringKind::SumProduct, &refs, cache.tables()).unwrap());
    }

    #[test]
    fn answers_match_view_for_every_variable() {
        let mut cat = Catalog::new();
        let rels = supply_chain(&mut cat);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let sr = SemiringKind::SumProduct;
        let cache = VeCache::build_in(&mut ExecContext::new(sr), &refs, None).unwrap();
        // Full view for reference.
        let mut cx = ExecContext::new(sr);
        let mut view = rels[0].clone();
        for r in &rels[1..] {
            view = mpf_algebra::ops::product_join(&mut cx, &view, r).unwrap();
        }
        for name in ["pid", "sid", "wid", "cid", "tid"] {
            let v = cat.var(name).unwrap();
            let want = mpf_algebra::ops::group_by(&mut cx, &view, &[v]).unwrap();
            let got = cache.answer(v).unwrap();
            assert!(want.function_eq(&got), "cache answer diverges on {name}");
        }
    }

    #[test]
    fn evidence_protocol_matches_conditioned_view() {
        // The paper's example: `select wid, agg(inv) ... where tid = 1`.
        let mut cat = Catalog::new();
        let rels = supply_chain(&mut cat);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let sr = SemiringKind::SumProduct;
        let cache = VeCache::build_in(&mut ExecContext::new(sr), &refs, None).unwrap();
        let tid = cat.var("tid").unwrap();
        let conditioned = cache.with_evidence(tid, 1).unwrap();

        let mut cx = ExecContext::new(sr);
        let mut view = rels[0].clone();
        for r in &rels[1..] {
            view = mpf_algebra::ops::product_join(&mut cx, &view, r).unwrap();
        }
        let view = mpf_algebra::ops::select_eq(&mut cx, &view, &[(tid, 1)]).unwrap();
        for name in ["pid", "sid", "wid", "cid"] {
            let v = cat.var(name).unwrap();
            let want = mpf_algebra::ops::group_by(&mut cx, &view, &[v]).unwrap();
            let got = conditioned.answer(v).unwrap();
            assert!(
                want.function_eq(&got),
                "conditioned cache diverges on {name}"
            );
        }
    }

    #[test]
    fn min_aggregate_workload() {
        // The same machinery in the min-sum semiring: `min` queries with
        // additive combination.
        let mut cat = Catalog::new();
        let rels = supply_chain(&mut cat);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let sr = SemiringKind::MinSum;
        let cache = VeCache::build_in(&mut ExecContext::new(sr), &refs, None).unwrap();
        assert!(satisfies_invariant(sr, &refs, cache.tables()).unwrap());
    }

    #[test]
    fn uncovered_variable_is_an_error() {
        let mut cat = Catalog::new();
        let rels = supply_chain(&mut cat);
        let ghost = cat.add_var("ghost", 7).unwrap();
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let cache = VeCache::build_in(&mut ExecContext::new(SemiringKind::SumProduct), &refs, None).unwrap();
        assert!(matches!(
            cache.answer(ghost),
            Err(InferError::VariableNotCovered(_))
        ));
    }

    #[test]
    fn expected_cost_weights_queries() {
        let mut cat = Catalog::new();
        let rels = supply_chain(&mut cat);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let cache = VeCache::build_in(&mut ExecContext::new(SemiringKind::SumProduct), &refs, None).unwrap();
        let tid = cat.var("tid").unwrap();
        let pid = cat.var("pid").unwrap();
        let wl = vec![
            WorkloadQuery {
                var: tid,
                predicates: vec![],
                probability: 0.5,
            },
            WorkloadQuery {
                var: pid,
                predicates: vec![],
                probability: 0.5,
            },
        ];
        let cost = cache.expected_cost(&wl);
        assert!(cost > cache.total_cached_rows() as f64);
        assert!(cost.is_finite());
    }

    #[test]
    fn incremental_update_matches_rebuild() {
        let mut cat = Catalog::new();
        let rels = supply_chain(&mut cat);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let sr = SemiringKind::SumProduct;
        let cache = VeCache::build_in(&mut ExecContext::new(sr), &refs, None).unwrap();

        // Change one row of `warehouses` and maintain incrementally.
        let wh_idx = rels.iter().position(|r| r.name() == "warehouses").unwrap();
        let row = rels[wh_idx].row(0).to_vec();
        let old = rels[wh_idx].measure(0);
        let new = old * 3.5;
        let maintained = cache
            .update_measure("warehouses", &row, old, new)
            .unwrap();

        // Reference: rebuild from the modified base relations.
        let mut modified = rels.clone();
        modified[wh_idx].set_measure(0, new);
        let mod_refs: Vec<&FunctionalRelation> = modified.iter().collect();
        let rebuilt = VeCache::build_in(&mut ExecContext::new(sr), &mod_refs, None).unwrap();

        for name in ["pid", "sid", "wid", "cid", "tid"] {
            let v = cat.var(name).unwrap();
            let want = rebuilt.answer(v).unwrap();
            let got = maintained.answer(v).unwrap();
            assert!(want.function_eq_in(&got, sr), "maintenance diverged on {name}");
        }
        // And the maintained cache satisfies Definition 5 directly.
        assert!(satisfies_invariant(sr, &mod_refs, maintained.tables()).unwrap());
    }

    #[test]
    fn incremental_update_rejects_support_changes() {
        let mut cat = Catalog::new();
        let rels = supply_chain(&mut cat);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let cache = VeCache::build_in(&mut ExecContext::new(SemiringKind::SumProduct), &refs, None).unwrap();
        assert!(matches!(
            cache.update_measure("warehouses", &[0, 0], 0.0, 1.0),
            Err(InferError::InvalidUpdate(_))
        ));
        assert!(matches!(
            cache.update_measure("missing", &[0, 0], 1.0, 2.0),
            Err(InferError::InvalidUpdate(_))
        ));
    }

    #[test]
    fn workload_order_selection_picks_cheaper_cache() {
        let mut cat = Catalog::new();
        let rels = supply_chain(&mut cat);
        let refs: Vec<&FunctionalRelation> = rels.iter().collect();
        let sr = SemiringKind::SumProduct;
        let tid = cat.var("tid").unwrap();
        let wl = vec![WorkloadQuery {
            var: tid,
            predicates: vec![],
            probability: 1.0,
        }];
        // Candidate orders: the default min-fill vs an adversarial order
        // that eliminates tid first (forcing its info into a larger table).
        let graph = VariableGraph::from_schemas(refs.iter().map(|r| r.schema()));
        let order_a = min_fill_order(&graph);
        let mut order_b = vec![tid];
        order_b.extend(graph.vertices().into_iter().filter(|&v| v != tid));
        let chosen = VeCache::build_for_workload(
            sr,
            &refs,
            &wl,
            &[order_a.clone(), order_b.clone()],
        )
        .unwrap();
        let a = VeCache::build_in(&mut ExecContext::new(sr), &refs, Some(&order_a)).unwrap();
        let b = VeCache::build_in(&mut ExecContext::new(sr), &refs, Some(&order_b)).unwrap();
        let best = a.expected_cost(&wl).min(b.expected_cost(&wl));
        assert!((chosen.expected_cost(&wl) - best).abs() < 1e-9);
        // And the chosen cache still answers correctly.
        assert!(satisfies_invariant(sr, &refs, chosen.tables()).unwrap());
    }

    #[test]
    fn disconnected_view_scaling() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 2).unwrap();
        let b = cat.add_var("b", 2).unwrap();
        let c = cat.add_var("c", 2).unwrap();
        let d = cat.add_var("d", 2).unwrap();
        let r1 = FunctionalRelation::complete(
            "r1",
            Schema::new(vec![a, b]).unwrap(),
            &cat,
            |row| (row[0] + row[1] + 1) as f64,
        );
        let r2 = FunctionalRelation::complete(
            "r2",
            Schema::new(vec![c, d]).unwrap(),
            &cat,
            |row| (2 * row[0] + row[1] + 1) as f64,
        );
        let refs = vec![&r1, &r2];
        let cache = VeCache::build_in(&mut ExecContext::new(SemiringKind::SumProduct), &refs, None).unwrap();
        assert!(
            satisfies_invariant(SemiringKind::SumProduct, &refs, cache.tables()).unwrap()
        );
        // Sanity: marginal on `a` includes r2's total as a factor.
        let view_total_r2: f64 = r2.measures().iter().sum();
        let ans = cache.answer(a).unwrap();
        let direct = mpf_algebra::ops::group_by(
            &mut ExecContext::new(SemiringKind::SumProduct),
            &r1,
            &[a],
        )
        .unwrap();
        for (row, m) in ans.rows() {
            let want = direct.lookup(row).unwrap() * view_total_r2;
            assert!(approx_eq(m, want));
        }
    }
}
