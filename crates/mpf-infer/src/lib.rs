#![warn(missing_docs)]
//! Workload optimization and probabilistic inference over MPF views
//! (Sections 4, 6 and Appendix A of the paper).
//!
//! This crate builds the machinery the paper layers on top of single-query
//! optimization:
//!
//! * [`VariableGraph`] — the Theorem 8 graph (variables as nodes, co-occurrence
//!   in a relation as edges), with chordality testing via Maximum Cardinality
//!   Search;
//! * [`triangulate`] — the Triangulization procedure (Algorithm 6), plus
//!   min-fill / min-degree elimination orders and maximal-clique extraction;
//! * [`acyclic`] — GYO ear reduction, the classical test equivalent to
//!   Theorem 7's join-tree characterization;
//! * [`junction`] — join trees (maximum-weight spanning tree over clique
//!   intersections + running-intersection verification) and the Junction
//!   Tree algorithm (Algorithm 5);
//! * [`bp`] — Belief Propagation as a semijoin program (Algorithm 4): the
//!   forward product-semijoin pass and backward update-semijoin pass, plus
//!   the Definition 5 correctness-invariant checker;
//! * [`VeCache`] — the VE-cache workload optimizer (Algorithm 3), with the
//!   restricted-range evidence protocol (Theorem 5) and the workload cost
//!   objective;
//! * [`BayesNet`] — Bayesian networks whose conditional probability tables
//!   are functional relations, with posterior queries compiled to MPF
//!   queries (Section 4).

pub mod acyclic;
mod bayes;
pub mod bp;
mod error;
mod graph;
pub mod junction;
pub mod triangulate;
mod vecache;

pub use bayes::{BayesNet, BayesNetBuilder};
pub use error::InferError;
pub use graph::VariableGraph;
pub use junction::{JoinTree, JunctionTree};
pub use vecache::{VeCache, WorkloadQuery};

/// Result alias for inference operations.
pub type Result<T> = std::result::Result<T, InferError>;
