use mpf_algebra::AlgebraError;
use mpf_storage::{StorageError, VarId};

/// Errors raised by the inference / workload layer.
#[derive(Debug, Clone, PartialEq)]
pub enum InferError {
    /// Underlying algebra error.
    Algebra(AlgebraError),
    /// Underlying storage error.
    Storage(StorageError),
    /// The schema is cyclic where an acyclic one is required (Belief
    /// Propagation without a junction tree — the paper's Figure 12 pitfall).
    CyclicSchema,
    /// A Bayesian-network node was declared without a CPT.
    MissingCpt(String),
    /// A CPT is malformed (wrong length, negative or non-normalized rows).
    InvalidCpt(String),
    /// The parent graph of a Bayesian network contains a directed cycle.
    CyclicNetwork,
    /// A query referenced a variable absent from every cached table.
    VariableNotCovered(VarId),
    /// An incremental cache update cannot be expressed (unknown relation,
    /// zero-measure old value, or a support-changing edit).
    InvalidUpdate(String),
    /// An evidence-set derivation was requested with no evidence pairs.
    EmptyEvidence,
}

impl From<AlgebraError> for InferError {
    fn from(e: AlgebraError) -> Self {
        InferError::Algebra(e)
    }
}

impl From<StorageError> for InferError {
    fn from(e: StorageError) -> Self {
        InferError::Storage(e)
    }
}

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferError::Algebra(e) => write!(f, "algebra error: {e}"),
            InferError::Storage(e) => write!(f, "storage error: {e}"),
            InferError::CyclicSchema => write!(
                f,
                "schema is cyclic: run the Junction Tree algorithm before Belief Propagation"
            ),
            InferError::MissingCpt(n) => write!(f, "node `{n}` has no CPT"),
            InferError::InvalidCpt(n) => write!(f, "node `{n}` has a malformed CPT"),
            InferError::CyclicNetwork => write!(f, "parent graph contains a directed cycle"),
            InferError::VariableNotCovered(v) => {
                write!(f, "variable {v} is not covered by any cached table")
            }
            InferError::InvalidUpdate(m) => write!(f, "invalid incremental update: {m}"),
            InferError::EmptyEvidence => {
                write!(f, "evidence-set derivation requires at least one pair")
            }
        }
    }
}

impl std::error::Error for InferError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InferError::Algebra(e) => Some(e),
            InferError::Storage(e) => Some(e),
            _ => None,
        }
    }
}
