//! Property tests for the extended relational algebra: the algebraic laws
//! that every optimization in the paper relies on, checked on random
//! functional relations in multiple semirings.

// The laws are about the algebra, not execution state: the uncontexted
// compat wrappers keep the property bodies free of ExecContext plumbing.
use mpf_algebra::ops::raw as ops;
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};
use proptest::prelude::*;

const SEMIRINGS: [SemiringKind; 3] = [
    SemiringKind::SumProduct,
    SemiringKind::MinProduct,
    SemiringKind::MaxSum,
];

/// Up to 4 variables with domains 2–3; three relations over random subsets.
#[derive(Debug, Clone)]
struct Triple {
    domains: Vec<u64>,
    rels: Vec<(Vec<usize>, Vec<bool>, u32)>, // (vars, keep flags, salt)
}

fn triple() -> impl Strategy<Value = Triple> {
    (2usize..=4).prop_flat_map(|nvars| {
        let domains = proptest::collection::vec(2u64..=3, nvars);
        domains.prop_flat_map(move |domains| {
            let rel = {
                let domains = domains.clone();
                (proptest::collection::vec(0usize..nvars, 1..=2), 0u32..50).prop_flat_map(
                    move |(mut vars, salt)| {
                        vars.sort_unstable();
                        vars.dedup();
                        let size: u64 = vars.iter().map(|&v| domains[v]).product();
                        proptest::collection::vec(proptest::bool::weighted(0.8), size as usize)
                            .prop_map(move |keep| (vars.clone(), keep, salt))
                    },
                )
            };
            proptest::collection::vec(rel, 3).prop_map({
                let domains = domains.clone();
                move |rels| Triple {
                    domains: domains.clone(),
                    rels,
                }
            })
        })
    })
}

fn build(t: &Triple) -> (Catalog, Vec<FunctionalRelation>) {
    let mut cat = Catalog::new();
    let ids: Vec<VarId> = t
        .domains
        .iter()
        .enumerate()
        .map(|(i, &d)| cat.add_var(&format!("x{i}"), d).unwrap())
        .collect();
    let rels = t
        .rels
        .iter()
        .enumerate()
        .map(|(ri, (vars, keep, salt))| {
            let schema = Schema::new(vars.iter().map(|&v| ids[v]).collect()).unwrap();
            let full = FunctionalRelation::complete("tmp", schema.clone(), &cat, |row| {
                ((row.iter().sum::<u32>() * 3 + salt) % 6 + 1) as f64 / 2.0
            });
            let mut rel = FunctionalRelation::new(format!("r{ri}"), schema);
            for (i, (row, m)) in full.rows().enumerate() {
                if keep[i] {
                    rel.push_row(row, m).unwrap();
                }
            }
            rel
        })
        .collect();
    (cat, rels)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Product join is commutative (as a function).
    #[test]
    fn join_commutative(t in triple()) {
        let (_, rels) = build(&t);
        for sr in SEMIRINGS {
            let ab = ops::product_join(sr, &rels[0], &rels[1]).unwrap();
            let ba = ops::product_join(sr, &rels[1], &rels[0]).unwrap();
            prop_assert!(ab.function_eq(&ba));
        }
    }

    /// Product join is associative (as a function).
    #[test]
    fn join_associative(t in triple()) {
        let (_, rels) = build(&t);
        for sr in SEMIRINGS {
            let left = ops::product_join(
                sr,
                &ops::product_join(sr, &rels[0], &rels[1]).unwrap(),
                &rels[2],
            )
            .unwrap();
            let right = ops::product_join(
                sr,
                &rels[0],
                &ops::product_join(sr, &rels[1], &rels[2]).unwrap(),
            )
            .unwrap();
            prop_assert!(left.function_eq(&right));
        }
    }

    /// The result of a product join or group-by is again a functional
    /// relation (FD holds) — the closure property of Definition 2.
    #[test]
    fn closure_under_operators(t in triple()) {
        let (_, rels) = build(&t);
        let sr = SemiringKind::SumProduct;
        let j = ops::product_join(sr, &rels[0], &rels[1]).unwrap();
        prop_assert!(j.validate_fd().is_ok());
        if let Some(&v) = j.schema().vars().first() {
            let g = ops::group_by(sr, &j, &[v]).unwrap();
            prop_assert!(g.validate_fd().is_ok());
        }
    }

    /// The Generalized Distributive Law: a group-by that drops variables
    /// local to one operand may be pushed below the join. This is the
    /// soundness core of every CS+/VE transformation.
    #[test]
    fn gdl_pushdown(t in triple()) {
        let (_, rels) = build(&t);
        let (a, b) = (&rels[0], &rels[1]);
        // Variables of `b` that do not occur in `a` can be aggregated early,
        // keeping the shared variables.
        let shared = a.schema().intersect(b.schema());
        for sr in SEMIRINGS {
            let joined = ops::product_join(sr, a, b).unwrap();
            let keep: Vec<VarId> = a
                .schema()
                .iter()
                .chain(shared.iter())
                .collect::<Schema>()
                .vars()
                .to_vec();
            let direct = ops::group_by(sr, &joined, &keep).unwrap();

            let reduced_b = ops::group_by(sr, b, shared.vars()).unwrap();
            let pushed = ops::product_join(sr, a, &reduced_b).unwrap();
            let pushed = ops::group_by(sr, &pushed, &keep).unwrap();
            prop_assert!(direct.function_eq(&pushed), "{sr:?}");
        }
    }

    /// Selection commutes with product join (selections are pushed onto
    /// scans by every optimizer).
    #[test]
    fn selection_pushdown(t in triple()) {
        let (_, rels) = build(&t);
        let (a, b) = (&rels[0], &rels[1]);
        let v = a.schema().vars()[0];
        let sr = SemiringKind::SumProduct;
        let joined = ops::product_join(sr, a, b).unwrap();
        let select_after = ops::select_eq(&joined, &[(v, 0)]).unwrap();
        let select_before =
            ops::product_join(sr, &ops::select_eq(a, &[(v, 0)]).unwrap(), b).unwrap();
        // If v also occurs in b the pushdown must hit both sides.
        let select_before = if b.schema().contains(v) {
            ops::select_eq(&select_before, &[(v, 0)]).unwrap()
        } else {
            select_before
        };
        prop_assert!(select_after.function_eq(&select_before));
    }

    /// Group-by is idempotent-compatible: grouping onto X then onto Y ⊆ X
    /// equals grouping straight onto Y.
    #[test]
    fn group_by_cascades(t in triple()) {
        let (_, rels) = build(&t);
        let a = &rels[0];
        let sr = SemiringKind::SumProduct;
        let vars = a.schema().vars().to_vec();
        let sub: Vec<VarId> = vars.iter().copied().take(1).collect();
        let two_step = ops::group_by(sr, &ops::group_by(sr, a, &vars).unwrap(), &sub).unwrap();
        let one_step = ops::group_by(sr, a, &sub).unwrap();
        prop_assert!(two_step.function_eq(&one_step));
    }

    /// Product semijoin preserves the receiver's schema and multiplies in
    /// exactly the sender's shared-variable marginal.
    #[test]
    fn product_semijoin_schema(t in triple()) {
        let (_, rels) = build(&t);
        let sr = SemiringKind::SumProduct;
        let red = ops::product_semijoin(sr, &rels[0], &rels[1]).unwrap();
        prop_assert_eq!(red.schema().vars(), rels[0].schema().vars());
    }
}
