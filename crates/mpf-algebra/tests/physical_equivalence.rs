//! Property test: physical plans compute the same functional relation as
//! their logical plan regardless of the operator algorithms chosen.

use mpf_algebra::{AggAlgo, Executor, JoinAlgo, PhysicalPlan, Plan, RelationStore};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};
use proptest::prelude::*;

fn store() -> (Catalog, RelationStore, Vec<VarId>) {
    let mut cat = Catalog::new();
    let a = cat.add_var("a", 3).unwrap();
    let b = cat.add_var("b", 3).unwrap();
    let c = cat.add_var("c", 3).unwrap();
    let mut s = RelationStore::new();
    s.insert(FunctionalRelation::complete(
        "r1",
        Schema::new(vec![a, b]).unwrap(),
        &cat,
        |row| (row[0] * 2 + row[1] + 1) as f64,
    ));
    s.insert(FunctionalRelation::complete(
        "r2",
        Schema::new(vec![b, c]).unwrap(),
        &cat,
        |row| (row[0] + 3 * row[1] + 1) as f64,
    ));
    s.insert(FunctionalRelation::complete(
        "r3",
        Schema::new(vec![c]).unwrap(),
        &cat,
        |row| (row[0] + 1) as f64,
    ));
    (cat, s, vec![a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random algorithm assignments never change the answer.
    #[test]
    fn physical_matches_logical(
        join_flags in proptest::collection::vec(any::<bool>(), 8),
        agg_flags in proptest::collection::vec(any::<bool>(), 8),
        group_var in 0usize..3,
        filter in proptest::option::of((0usize..2, 0u32..3)),
    ) {
        let (_, store, vars) = store();
        let sr = SemiringKind::SumProduct;

        // A fixed logical shape with pushdowns and an optional selection.
        let mut scan1: Plan = Plan::scan("r1");
        if let Some((v, c)) = filter {
            scan1 = Plan::select(scan1, vec![(vars[v], c)]);
        }
        let logical = Plan::group_by(
            Plan::join(
                Plan::join(scan1, Plan::group_by(Plan::scan("r2"), vec![vars[1], vars[2]])),
                Plan::scan("r3"),
            ),
            vec![vars[group_var]],
        );

        let exec = Executor::new(&store, sr);
        let (want, _) = exec.execute(&logical).unwrap();

        let mut ji = 0;
        let mut ai = 0;
        let physical = PhysicalPlan::from_logical(
            &logical,
            &mut |_, _| {
                ji += 1;
                if join_flags[ji % join_flags.len()] {
                    JoinAlgo::Hash
                } else {
                    JoinAlgo::SortMerge
                }
            },
            &mut |_, _| {
                ai += 1;
                if agg_flags[ai % agg_flags.len()] {
                    AggAlgo::HashAgg
                } else {
                    AggAlgo::SortAgg
                }
            },
        );
        let (got, stats) = exec.execute_physical(&physical).unwrap();
        prop_assert!(want.function_eq(&got));
        prop_assert_eq!(stats.joins, 2);
        prop_assert_eq!(stats.group_bys, 2);
    }
}
