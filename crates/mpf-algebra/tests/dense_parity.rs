//! Property tests for the dense odometer kernels: on support-exact inputs
//! the dense join and marginalization are function-equal to the sparse
//! hash operators for every semiring, *bit-identical across thread
//! counts*, and charge the budgets identically (same typed error on a
//! trip, same rows-processed accounting). On inputs that are not
//! support-exact every [`DenseMode`] falls back to the sparse operators,
//! so answers never depend on the mode.
//!
//! Modes are pinned on the [`ExecContext`] rather than through `MPF_DENSE`
//! (tests share a process; the env var is read once per context build),
//! which is also why CI runs this suite under both `MPF_DENSE=off` and
//! `MPF_DENSE=auto`: the explicit-mode tests must hold either way.

use mpf_algebra::{
    dense, ops, AggAlgo, AlgebraError, CancelToken, DenseMode, ExecContext, ExecLimits, Executor,
    JoinAlgo, PhysicalPlan, Plan, RelationStore, ResourceKind,
};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};
use proptest::prelude::*;

const THREADS: [usize; 2] = [1, 4];

/// Exact equality up to row/column order — no float tolerance.
fn bit_identical(a: &FunctionalRelation, b: &FunctionalRelation) -> bool {
    let (a, b) = (a.canonicalized(), b.canonicalized());
    a.schema() == b.schema() && a.len() == b.len() && a.rows().eq(b.rows())
}

/// Complete r1(a, b) and r2(b, c) over 3-value domains with the given
/// measures (support-exact join inputs: every grid point is a row and the
/// shared variable spans the same range on both sides).
fn rels(
    sr: SemiringKind,
    m1: &[u8],
    m2: &[u8],
) -> (FunctionalRelation, FunctionalRelation, [VarId; 3]) {
    let mut cat = Catalog::new();
    let a = cat.add_var("a", 3).unwrap();
    let b = cat.add_var("b", 3).unwrap();
    let c = cat.add_var("c", 3).unwrap();
    // BoolOrAnd measures must stay in {0, 1}.
    let conv = |m: u8| {
        if sr == SemiringKind::BoolOrAnd {
            (m % 2) as f64
        } else {
            m as f64
        }
    };
    let r1 = FunctionalRelation::from_rows(
        "r1",
        Schema::new(vec![a, b]).unwrap(),
        (0..9u32).map(|i| (vec![i / 3, i % 3], conv(m1[i as usize]))),
    )
    .unwrap();
    let r2 = FunctionalRelation::from_rows(
        "r2",
        Schema::new(vec![b, c]).unwrap(),
        (0..9u32).map(|i| (vec![i / 3, i % 3], conv(m2[i as usize]))),
    )
    .unwrap();
    (r1, r2, [a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense join + marginalization match the sparse operators for every
    /// semiring at every thread count on support-exact inputs, with the
    /// dense output bit-identical across thread counts.
    #[test]
    fn dense_operators_match_sparse(
        m1 in proptest::collection::vec(0u8..10, 9),
        m2 in proptest::collection::vec(0u8..10, 9),
        group_var in 0usize..3,
    ) {
        for sr in SemiringKind::ALL {
            let (r1, r2, vars) = rels(sr, &m1, &m2);
            let gv = [vars[group_var]];
            let want_join = ops::product_join(&mut ExecContext::new(sr), &r1, &r2).unwrap();
            let want_agg = ops::group_by(&mut ExecContext::new(sr), &want_join, &gv).unwrap();
            let mut base: Option<(FunctionalRelation, FunctionalRelation)> = None;
            for t in THREADS {
                let mut cx = ExecContext::new(sr).with_threads(t);
                let got_join = dense::join(&mut cx, &r1, &r2).unwrap();
                let got_agg = dense::agg(&mut cx, &got_join, &gv).unwrap();
                prop_assert_eq!(cx.stats().dense_joins, 1, "dense path taken");
                prop_assert_eq!(cx.stats().dense_group_bys, 1);
                // Same support, same measures (up to float tolerance for
                // the reassociated group folds) as the sparse pipeline...
                prop_assert!(want_join.function_eq(&got_join), "join: sr {sr:?} threads {t}");
                prop_assert!(want_agg.function_eq(&got_agg), "agg: sr {sr:?} threads {t}");
                // ...and the dense results never vary with the thread
                // count, down to the bits.
                match &base {
                    None => base = Some((got_join, got_agg)),
                    Some((j, g)) => {
                        prop_assert!(bit_identical(&got_join, j), "join bits: sr {sr:?}");
                        prop_assert!(bit_identical(&got_agg, g), "agg bits: sr {sr:?}");
                    }
                }
            }
        }
    }

    /// Whatever the mode, [`dense::join_auto`] / [`dense::agg_auto`]
    /// answer identically: Off always takes the sparse path, and On/Auto
    /// refuse inputs that are not support-exact, so mode only ever picks
    /// the kernel, never the answer. Holes are punched in r1 (making it
    /// incomplete) to exercise the fallback side.
    #[test]
    fn mode_never_changes_answers(
        m1 in proptest::collection::vec(0u8..10, 9),
        m2 in proptest::collection::vec(0u8..10, 9),
        hole_picks in proptest::collection::vec(0usize..9, 0..4),
        sr_idx in 0usize..7,
    ) {
        let holes: std::collections::BTreeSet<usize> = hole_picks.into_iter().collect();
        let sr = SemiringKind::ALL[sr_idx];
        let (r1, r2, [_, b, _]) = rels(sr, &m1, &m2);
        let punched = FunctionalRelation::from_rows(
            "r1",
            r1.schema().clone(),
            r1.rows().enumerate().filter(|(i, _)| !holes.contains(i)).map(|(_, (row, m))| (row.to_vec(), m)),
        )
        .unwrap();
        for input in [&r1, &punched] {
            let mut answers: Vec<FunctionalRelation> = Vec::new();
            for mode in [DenseMode::Off, DenseMode::On, DenseMode::Auto] {
                let mut cx = ExecContext::new(sr).with_dense(mode);
                let j = dense::join_auto(&mut cx, input, &r2).unwrap();
                let g = dense::agg_auto(&mut cx, &j, &[b]).unwrap();
                if mode == DenseMode::Off {
                    prop_assert_eq!(cx.stats().dense_joins + cx.stats().dense_group_bys, 0);
                }
                if !dense::join_support_exact(input, &r2) {
                    prop_assert_eq!(cx.stats().dense_joins, 0, "incomplete input fell back");
                }
                answers.push(g);
            }
            for other in &answers[1..] {
                prop_assert!(answers[0].function_eq(other), "sr {sr:?} holes {holes:?}");
            }
        }
    }
}

/// A fixture big enough to cross [`dense::PARALLEL_MIN_CELLS`]: joining
/// two complete 8^3-row relations yields an 8^5 = 32768-cell output grid,
/// so at 4 threads the kernels actually fan out.
fn big_fixture() -> (FunctionalRelation, FunctionalRelation, [VarId; 5]) {
    let mut cat = Catalog::new();
    let vars: Vec<VarId> = ["a", "b", "c", "d", "e"]
        .iter()
        .map(|n| cat.add_var(n, 8).unwrap())
        .collect();
    let &[a, b, c, d, e] = vars.as_slice() else { unreachable!() };
    let r1 = FunctionalRelation::complete("r1", Schema::new(vec![a, b, c]).unwrap(), &cat, |row| {
        0.1 + (row[0] * 64 + row[1] * 8 + row[2]) as f64 / 7.0
    });
    let r2 = FunctionalRelation::complete("r2", Schema::new(vec![c, d, e]).unwrap(), &cat, |row| {
        0.3 + (row[0] * 64 + row[1] * 8 + row[2]) as f64 / 11.0
    });
    (r1, r2, [a, b, c, d, e])
}

/// The chunked parallel kernels are bit-identical to the sequential ones
/// on an output large enough to actually engage them, for the semirings
/// whose additions are float-order-sensitive.
#[test]
fn parallel_dense_kernels_match_sequential_bits() {
    let (r1, r2, [_, b, _, d, _]) = big_fixture();
    for sr in [SemiringKind::SumProduct, SemiringKind::LogSumProduct] {
        let mut seq = ExecContext::new(sr).with_threads(1);
        let j1 = dense::join(&mut seq, &r1, &r2).unwrap();
        let g1 = dense::agg(&mut seq, &j1, &[b, d]).unwrap();
        let mut par = ExecContext::new(sr).with_threads(4);
        let j4 = dense::join(&mut par, &r1, &r2).unwrap();
        let g4 = dense::agg(&mut par, &j4, &[b, d]).unwrap();
        assert_eq!(seq.stats().dense_joins, 1);
        assert_eq!(par.stats().dense_joins, 1);
        assert!(bit_identical(&j1, &j4), "{sr:?} join");
        assert!(bit_identical(&g1, &g4), "{sr:?} agg");
        // And the sparse pipeline agrees as a function.
        let sj = ops::product_join(&mut ExecContext::new(sr), &r1, &r2).unwrap();
        let sg = ops::group_by(&mut ExecContext::new(sr), &sj, &[b, d]).unwrap();
        assert!(sj.function_eq(&j4), "{sr:?} sparse join parity");
        assert!(sg.function_eq(&g4), "{sr:?} sparse agg parity");
    }
}

/// Physical plans annotated `Dense`/`DenseAgg` by the planner execute
/// through the interpreter to the same answer and accounting as the
/// all-hash plan, at every thread count.
#[test]
fn dense_plans_match_hash_plans_through_the_interpreter() {
    let sr = SemiringKind::SumProduct;
    let (r1, r2, [_, b, _]) = rels(sr, &[3u8; 9], &[5u8; 9]);
    let mut store = RelationStore::new();
    store.insert(r1);
    store.insert(r2);
    let logical = Plan::group_by(Plan::join(Plan::scan("r1"), Plan::scan("r2")), vec![b]);
    let (want, want_stats) = Executor::new(&store, sr)
        .execute_physical(&PhysicalPlan::default_hash(&logical))
        .unwrap();
    let dense_plan = PhysicalPlan::from_logical(
        &logical,
        &mut |_, _| JoinAlgo::Dense,
        &mut |_, _| AggAlgo::DenseAgg,
    );
    for t in THREADS {
        let (got, stats) = Executor::new(&store, sr)
            .with_threads(t)
            .execute_physical(&dense_plan)
            .unwrap();
        assert!(want.function_eq(&got), "threads {t}");
        assert_eq!(stats.dense_joins, 1, "threads {t}");
        assert_eq!(stats.dense_group_bys, 1, "threads {t}");
        // Budget accounting parity: both pipelines count the same work.
        assert_eq!(stats.rows_processed, want_stats.rows_processed, "threads {t}");
        assert_eq!(stats.rows_scanned, want_stats.rows_scanned, "threads {t}");
    }
}

/// A budget trip inside a dense kernel surfaces the same typed error as
/// the sparse operator it replaces — including from the chunked parallel
/// path, where workers charge the shared budget live.
#[test]
fn budget_trips_are_identical_across_paths() {
    let sr = SemiringKind::SumProduct;
    let (r1, r2, _) = rels(sr, &[1u8; 9], &[1u8; 9]);
    let limits = ExecLimits::none().with_max_output_rows(10);
    let want = ops::product_join(&mut ExecContext::with_limits(sr, limits.clone()), &r1, &r2)
        .unwrap_err();
    assert!(matches!(
        want,
        AlgebraError::ResourceExhausted { resource: ResourceKind::OutputRows, limit: 10, .. }
    ));
    let got = dense::join(&mut ExecContext::with_limits(sr, limits), &r1, &r2).unwrap_err();
    assert_eq!(want, got, "sequential dense trip");

    let (b1, b2, _) = big_fixture();
    let limits = ExecLimits::none().with_max_output_rows(100);
    for t in THREADS {
        match dense::join(
            &mut ExecContext::with_limits(sr, limits.clone()).with_threads(t),
            &b1,
            &b2,
        ) {
            Err(AlgebraError::ResourceExhausted {
                resource: ResourceKind::OutputRows,
                limit: 100,
                ..
            }) => {}
            other => panic!("threads {t}: expected OutputRows trip, got {other:?}"),
        }
    }
}

/// A cancelled token stops the dense kernels with the typed `Cancelled`
/// error at every thread count, like the sparse operators.
#[test]
fn cancellation_stops_dense_kernels() {
    let sr = SemiringKind::SumProduct;
    let (r1, r2, [_, b, _]) = rels(sr, &[1u8; 9], &[1u8; 9]);
    for t in THREADS {
        let token = CancelToken::new();
        token.cancel();
        let limits = ExecLimits::none().with_cancel_token(token);
        let mut cx = ExecContext::with_limits(sr, limits).with_threads(t);
        match dense::join(&mut cx, &r1, &r2) {
            Err(AlgebraError::Cancelled) => {}
            other => panic!("threads {t}: expected Cancelled, got {other:?}"),
        }
        match dense::agg(&mut cx, &r1, &[b]) {
            Err(AlgebraError::Cancelled) => {}
            other => panic!("threads {t} agg: expected Cancelled, got {other:?}"),
        }
    }
}

/// Fault-injection parity at the three new dense sites: an armed site
/// fails exactly that operator with [`AlgebraError::FaultInjected`] and
/// disarms after firing, like every sparse site.
#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use mpf_algebra::fault;
    use std::sync::Mutex;

    /// The fault registry is process-global; serialize arming tests.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn dense_sites_fire_once_and_disarm() {
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        fault::clear_all();
        let sr = SemiringKind::SumProduct;
        let (r1, r2, [_, b, _]) = rels(sr, &[1u8; 9], &[2u8; 9]);

        fault::inject("dense::join", 1);
        assert_eq!(
            dense::join(&mut ExecContext::new(sr), &r1, &r2).unwrap_err(),
            AlgebraError::FaultInjected("dense::join".into())
        );
        assert!(dense::join(&mut ExecContext::new(sr), &r1, &r2).is_ok());

        fault::inject("dense::agg", 1);
        assert_eq!(
            dense::agg(&mut ExecContext::new(sr), &r1, &[b]).unwrap_err(),
            AlgebraError::FaultInjected("dense::agg".into())
        );
        assert!(dense::agg(&mut ExecContext::new(sr), &r1, &[b]).is_ok());

        // The conversion site fires from inside the join (first to_dense)
        // and leaves the context's stats coherent: no dense join was
        // recorded for the failed attempt.
        fault::inject("dense::convert", 1);
        let mut cx = ExecContext::new(sr);
        assert_eq!(
            dense::join(&mut cx, &r1, &r2).unwrap_err(),
            AlgebraError::FaultInjected("dense::convert".into())
        );
        assert_eq!(cx.stats().dense_joins, 0);
        assert!(dense::join(&mut cx, &r1, &r2).is_ok());
        assert_eq!(cx.stats().dense_joins, 1);
        fault::clear_all();
    }
}
