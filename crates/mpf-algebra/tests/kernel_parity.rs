//! Kernel-mode parity: whatever `MPF_KERNEL` selects — scalar inner
//! loops or the 8-wide chunked kernels — answers are the same function,
//! for every semiring, under every representation mode, at every thread
//! count; and the fused join→marginalize operator is indistinguishable
//! from the unfused pair except in the work it skips.
//!
//! The guarantees under test, in decreasing strength:
//!
//! * **Bit-identity across thread counts** for *all* semirings in either
//!   kernel mode: the chunked reduction shape is a pure function of run
//!   length, never of the worker partitioning.
//! * **Bit-identity scalar vs chunked** for the selective semirings
//!   (min/max/or families): reassociating a selective fold cannot change
//!   the result. The rounding semirings (sum-product, log-sum-product)
//!   agree within [`FunctionalRelation::function_eq_in`] tolerance.
//! * **Bit-identity fused vs unfused** for *all* semirings: the fused
//!   kernel folds products in exactly the unfused join-then-aggregate
//!   order, on both the dense grid path and the hash fallback.
//!
//! Modes are pinned on the [`ExecContext`] (tests share a process; env
//! vars are read once per context build); CI additionally runs the whole
//! suite under `MPF_KERNEL=scalar|chunked` × `MPF_THREADS=1|4`.

use std::collections::BTreeMap;

use mpf_algebra::{
    sparse, AggAlgo, DenseMode, ExecContext, Executor, JoinAlgo, KernelMode, PhysicalPlan, Plan,
    RelationStore, ReprMode, SpanKind, TraceLevel,
};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};
use proptest::prelude::*;

const THREADS: [usize; 2] = [1, 4];
const KERNELS: [KernelMode; 2] = [KernelMode::Scalar, KernelMode::Chunked];
const REPRS: [ReprMode; 2] = [ReprMode::Off, ReprMode::Sparse];
const DENSES: [DenseMode; 2] = [DenseMode::Off, DenseMode::Auto];

/// Semirings whose additive operation is selective (min/max/or): the
/// fold's value is one of its operands, so any reassociation — lane
/// chunking included — is exact, not just within rounding.
fn selective(sr: SemiringKind) -> bool {
    !matches!(sr, SemiringKind::SumProduct | SemiringKind::LogSumProduct)
}

/// Row-keyed measure bits, for order-independent bitwise comparison.
fn bits(rel: &FunctionalRelation) -> BTreeMap<Vec<u32>, u64> {
    rel.rows()
        .map(|(row, m)| (row.to_vec(), m.to_bits()))
        .collect()
}

/// Deterministic per-cell inclusion decision (split-mix style hash), so a
/// (density, salt) pair always generates the same relation.
fn keep_cell(cell: u64, salt: u64, density: f64) -> bool {
    let mut x = cell.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    ((x >> 11) as f64 / (1u64 << 53) as f64) < density
}

/// A functional relation over `vars` whose support is a deterministic
/// `density` fraction of the domain grid, with semiring-safe measures
/// that are *not* all equal (so reassociation bugs cannot hide).
fn gen_rel(
    name: &str,
    vars: Vec<VarId>,
    doms: &[u64],
    density: f64,
    salt: u64,
    sr: SemiringKind,
) -> FunctionalRelation {
    let cells: u64 = doms.iter().product();
    let measure = |cell: u64| {
        if sr == SemiringKind::BoolOrAnd {
            (cell.wrapping_add(salt)) as f64 % 2.0
        } else {
            // Spread across two decades with an exact and an inexact
            // fraction so float addition order is observable.
            ((cell.wrapping_add(salt * 13)) % 7 + 1) as f64 / 3.0
        }
    };
    let rows = (0..cells).filter(|&c| keep_cell(c, salt, density)).map(|c| {
        let mut row = Vec::with_capacity(doms.len());
        let mut rest = c;
        for &d in doms.iter().rev() {
            row.push((rest % d) as u32);
            rest /= d;
        }
        row.reverse();
        (row, measure(c))
    });
    FunctionalRelation::from_rows(name, Schema::new(vars).unwrap(), rows).unwrap()
}

/// Chain fixture r1(a,b), r2(b,c), r3(c,d) over domains big enough that
/// the innermost runs exceed one 8-lane chunk (domain 12 ⇒ 12-cell runs).
fn chain(sr: SemiringKind, density: f64) -> ([FunctionalRelation; 3], [VarId; 4]) {
    let mut cat = Catalog::new();
    let a = cat.add_var("a", 12).unwrap();
    let b = cat.add_var("b", 12).unwrap();
    let c = cat.add_var("c", 12).unwrap();
    let d = cat.add_var("d", 12).unwrap();
    (
        [
            gen_rel("r1", vec![a, b], &[12, 12], density, 1, sr),
            gen_rel("r2", vec![b, c], &[12, 12], density, 2, sr),
            gen_rel("r3", vec![c, d], &[12, 12], density, 3, sr),
        ],
        [a, b, c, d],
    )
}

/// A VE pipeline (eliminate b, then c, then marginalize onto a) under one
/// pinned (repr, dense, kernel, threads) mode tuple.
fn ve_chain(
    sr: SemiringKind,
    rels: &[FunctionalRelation; 3],
    vars: &[VarId; 4],
    repr: ReprMode,
    dense: DenseMode,
    kernel: KernelMode,
    threads: usize,
) -> (FunctionalRelation, mpf_algebra::ExecStats) {
    let [a, _, c, d] = *vars;
    let mut cx = ExecContext::new(sr)
        .with_repr(repr)
        .with_dense(dense)
        .with_kernel(kernel)
        .with_threads(threads);
    let t1 = sparse::join_auto(&mut cx, &rels[0], &rels[1]).unwrap();
    let t1 = sparse::agg_auto(&mut cx, &t1, &[a, c]).unwrap();
    let t2 = sparse::join_auto(&mut cx, &t1, &rels[2]).unwrap();
    let t2 = sparse::agg_auto(&mut cx, &t2, &[a, d]).unwrap();
    let out = sparse::agg_auto(&mut cx, &t2, &[a]).unwrap();
    (out, *cx.stats())
}

/// The full matrix: 7 semirings × {off,sparse} × {off,auto} × both
/// kernels × threads {1,4}, at a sparse and a near-complete density.
/// Scalar and chunked always compute the same function; selective
/// semirings agree bit-for-bit; *every* cell of the matrix is
/// bit-identical across thread counts.
#[test]
fn kernel_matrix_parity() {
    for density in [0.3, 0.95] {
        for sr in SemiringKind::ALL {
            let (rels, vars) = chain(sr, density);
            let (baseline, _) = ve_chain(
                sr,
                &rels,
                &vars,
                ReprMode::Off,
                DenseMode::Off,
                KernelMode::Scalar,
                1,
            );
            for repr in REPRS {
                for dense in DENSES {
                    for kernel in KERNELS {
                        let mut per_thread: Vec<BTreeMap<Vec<u32>, u64>> = Vec::new();
                        for t in THREADS {
                            let (got, stats) =
                                ve_chain(sr, &rels, &vars, repr, dense, kernel, t);
                            assert!(
                                baseline.function_eq_in(&got, sr),
                                "diverged from scalar-hash baseline: density {density} \
                                 sr {sr:?} repr {repr:?} dense {dense:?} kernel \
                                 {kernel:?} threads {t}"
                            );
                            // Mode accounting: a context pinned to one kernel
                            // mode never counts ops under the other.
                            match kernel {
                                KernelMode::Scalar => assert_eq!(stats.kernel_chunked_ops, 0),
                                KernelMode::Chunked => assert_eq!(stats.kernel_scalar_ops, 0),
                            }
                            per_thread.push(bits(&got));
                        }
                        assert_eq!(
                            per_thread[0], per_thread[1],
                            "thread count changed bits: density {density} sr {sr:?} \
                             repr {repr:?} dense {dense:?} kernel {kernel:?}"
                        );
                    }
                    // Selective addition makes chunking exact, so the two
                    // kernel modes agree bit-for-bit, not just in tolerance.
                    if selective(sr) {
                        let (s, _) = ve_chain(
                            sr, &rels, &vars, repr, dense, KernelMode::Scalar, 1,
                        );
                        let (c, _) = ve_chain(
                            sr, &rels, &vars, repr, dense, KernelMode::Chunked, 1,
                        );
                        assert_eq!(
                            bits(&s),
                            bits(&c),
                            "selective fold reassociated: density {density} sr {sr:?} \
                             repr {repr:?} dense {dense:?}"
                        );
                    }
                }
            }
        }
    }
}

/// Store + plan pair for the fused-operator tests: complete r1(a,b),
/// r2(b,c) over 8-value domains, marginalized onto `a` — b and c are
/// join-only/eliminated, the shape the fused operator exists for.
fn fused_fixture(sr: SemiringKind) -> (RelationStore, Vec<VarId>, Plan) {
    let mut cat = Catalog::new();
    let a = cat.add_var("a", 8).unwrap();
    let b = cat.add_var("b", 8).unwrap();
    let c = cat.add_var("c", 8).unwrap();
    let mut store = RelationStore::new();
    store.insert(gen_rel("r1", vec![a, b], &[8, 8], 1.0, 4, sr));
    store.insert(gen_rel("r2", vec![b, c], &[8, 8], 1.0, 5, sr));
    let logical = Plan::group_by(Plan::join(Plan::scan("r1"), Plan::scan("r2")), vec![a]);
    (store, vec![a, b, c], logical)
}

fn fused_plan(gv: &[VarId]) -> PhysicalPlan {
    PhysicalPlan::JoinAgg {
        left: Box::new(PhysicalPlan::Scan {
            relation: "r1".into(),
        }),
        right: Box::new(PhysicalPlan::Scan {
            relation: "r2".into(),
        }),
        group_vars: gv.to_vec(),
    }
}

/// Fused vs unfused on the dense grid path: bit-identical output for all
/// semirings and kernel modes at both thread counts, with the fused run
/// reporting strictly lower peak intermediate rows and reconciled
/// operator counts (one join plus one group-by).
#[test]
fn fused_dense_matches_unfused_bitwise_and_lowers_peak() {
    for sr in SemiringKind::ALL {
        let (store, vars, logical) = fused_fixture(sr);
        let gv = [vars[0]];
        let unfused = PhysicalPlan::from_logical(
            &logical,
            &mut |_, _| JoinAlgo::Dense,
            &mut |_, _| AggAlgo::DenseAgg,
        );
        let fused = fused_plan(&gv);
        let exec = Executor::new(&store, sr);
        for kernel in KERNELS {
            for t in THREADS {
                let mk = || {
                    ExecContext::new(sr)
                        .with_dense(DenseMode::On)
                        .with_kernel(kernel)
                        .with_threads(t)
                };
                let mut ucx = mk();
                let want = exec.execute_physical_in(&mut ucx, &unfused).unwrap();
                let mut fcx = mk();
                let got = exec.execute_physical_in(&mut fcx, &fused).unwrap();
                assert_eq!(
                    bits(&want),
                    bits(&got),
                    "fused dense diverged: sr {sr:?} kernel {kernel:?} threads {t}"
                );
                let (us, fs) = (ucx.take_stats(), fcx.take_stats());
                assert_eq!(fs.fused_join_aggs, 1, "sr {sr:?}");
                assert_eq!(us.fused_join_aggs, 0);
                // The fused operator accounts as one join *plus* one
                // group-by, so the counters reconcile with the unfused run.
                assert_eq!(fs.joins, us.joins, "sr {sr:?}");
                assert_eq!(fs.group_bys, us.group_bys, "sr {sr:?}");
                assert_eq!(fs.dense_joins, 1, "sr {sr:?}");
                assert_eq!(fs.dense_group_bys, 1, "sr {sr:?}");
                // It never materializes the 512-cell join intermediate.
                assert!(
                    fs.max_intermediate_rows < us.max_intermediate_rows,
                    "fused peak {} !< unfused peak {}: sr {sr:?}",
                    fs.max_intermediate_rows,
                    us.max_intermediate_rows
                );
            }
        }
    }
}

/// Fused vs unfused on the hash fallback (dense off): same bit-identity,
/// peak, and reconciliation guarantees, for every semiring.
#[test]
fn fused_hash_fallback_matches_hash_pipeline_bitwise() {
    for sr in SemiringKind::ALL {
        let (store, vars, logical) = fused_fixture(sr);
        let gv = [vars[0]];
        let unfused = PhysicalPlan::default_hash(&logical);
        let fused = fused_plan(&gv);
        let exec = Executor::new(&store, sr);
        let mk = || ExecContext::new(sr).with_dense(DenseMode::Off).with_repr(ReprMode::Off);
        let mut ucx = mk();
        let want = exec.execute_physical_in(&mut ucx, &unfused).unwrap();
        let mut fcx = mk();
        let got = exec.execute_physical_in(&mut fcx, &fused).unwrap();
        assert_eq!(
            bits(&want),
            bits(&got),
            "fused hash fallback diverged: sr {sr:?}"
        );
        let (us, fs) = (ucx.take_stats(), fcx.take_stats());
        assert_eq!(fs.fused_join_aggs, 1);
        assert_eq!(fs.joins, us.joins);
        assert_eq!(fs.group_bys, us.group_bys);
        assert_eq!(fs.dense_joins + fs.dense_group_bys, 0, "hash path stayed hash");
        assert!(fs.max_intermediate_rows < us.max_intermediate_rows, "sr {sr:?}");
    }
}

/// The fused span carries `fused=true` and the kernel tag, and its row
/// accounting reconciles with the executed result — what `EXPLAIN
/// ANALYZE` and the metrics pipeline read.
#[test]
fn fused_span_reports_kernel_and_reconciles() {
    let sr = SemiringKind::SumProduct;
    let (store, vars, _) = fused_fixture(sr);
    let gv = [vars[0]];
    let mut cx = ExecContext::new(sr)
        .with_dense(DenseMode::On)
        .with_kernel(KernelMode::Chunked)
        .with_trace(TraceLevel::Spans);
    let out = Executor::new(&store, sr)
        .execute_physical_in(&mut cx, &fused_plan(&gv))
        .unwrap();
    let stats = *cx.stats();
    let trace = cx.take_trace();
    let mut fused_spans = 0;
    trace.for_each(&mut |span| {
        if span.fused {
            fused_spans += 1;
            assert_eq!(span.kind, SpanKind::GroupBy);
            assert_eq!(span.kernel, Some("chunked"), "fused dense span is tagged");
            assert_eq!(span.rows_out, out.len() as u64, "span rows match the result");
        }
    });
    assert_eq!(fused_spans, 1, "exactly one fused span:\n{}", trace.render());
    assert_eq!(stats.fused_join_aggs, 1);
    assert_eq!(stats.kernel_chunked_ops, 1);
    let rendered = trace.render();
    assert!(
        rendered.contains("fused=true") && rendered.contains("kernel=chunked"),
        "render surfaces the tags:\n{rendered}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random measures and random support holes: neither the kernel mode
    /// nor fusion ever changes the answer, under either representation.
    #[test]
    fn kernel_and_fusion_never_change_answers(
        m1 in proptest::collection::vec(0u8..10, 16),
        m2 in proptest::collection::vec(0u8..10, 16),
        hole_picks in proptest::collection::vec(0usize..16, 0..6),
        sr_idx in 0usize..7,
    ) {
        let holes: std::collections::BTreeSet<usize> = hole_picks.into_iter().collect();
        let sr = SemiringKind::ALL[sr_idx];
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 4).unwrap();
        let b = cat.add_var("b", 4).unwrap();
        let c = cat.add_var("c", 4).unwrap();
        let conv = |m: u8| if sr == SemiringKind::BoolOrAnd { (m % 2) as f64 } else { m as f64 };
        let r1 = FunctionalRelation::from_rows(
            "r1",
            Schema::new(vec![a, b]).unwrap(),
            (0..16u32)
                .filter(|i| !holes.contains(&(*i as usize)))
                .map(|i| (vec![i / 4, i % 4], conv(m1[i as usize]))),
        )
        .unwrap();
        let r2 = FunctionalRelation::from_rows(
            "r2",
            Schema::new(vec![b, c]).unwrap(),
            (0..16u32).map(|i| (vec![i / 4, i % 4], conv(m2[i as usize]))),
        )
        .unwrap();
        let mut store = RelationStore::new();
        store.insert(r1);
        store.insert(r2);
        let logical = Plan::group_by(Plan::join(Plan::scan("r1"), Plan::scan("r2")), vec![a]);
        let exec = Executor::new(&store, sr);
        let (want, _) = exec.execute_physical(&PhysicalPlan::default_hash(&logical)).unwrap();
        for dense in DENSES {
            for kernel in KERNELS {
                let mut cx = ExecContext::new(sr).with_dense(dense).with_kernel(kernel);
                let got = exec.execute_physical_in(&mut cx, &fused_plan(&[a])).unwrap();
                prop_assert!(
                    want.function_eq_in(&got, sr),
                    "sr {sr:?} dense {dense:?} kernel {kernel:?} holes {holes:?}"
                );
            }
        }
    }
}
