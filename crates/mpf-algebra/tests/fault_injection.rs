//! Fault-injection coverage of every instrumented operator site: an armed
//! site makes exactly its operator return [`AlgebraError::FaultInjected`],
//! the arm disarms after firing (so a retry succeeds), and plans running
//! through the [`Executor`] surface the error without panicking.
//!
//! Run with `cargo test -p mpf-algebra --features fault-injection`.
#![cfg(feature = "fault-injection")]

use std::sync::Mutex;

use mpf_algebra::{
    fault, ops, partitioned, sort_ops, AlgebraError, ExecContext, Executor, PhysicalPlan, Plan,
    RelationStore,
};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema};

/// One operator invocation under test.
type OpCall<'a> = Box<dyn Fn() -> Result<FunctionalRelation, AlgebraError> + 'a>;

/// The fault registry is process-global; tests that arm sites serialize on
/// this lock so one test's arms never fire in another.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn fixtures() -> (Catalog, FunctionalRelation, FunctionalRelation) {
    let mut cat = Catalog::new();
    let a = cat.add_var("a", 3).unwrap();
    let b = cat.add_var("b", 3).unwrap();
    let c = cat.add_var("c", 3).unwrap();
    let l = FunctionalRelation::complete("l", Schema::new(vec![a, b]).unwrap(), &cat, |row| {
        (row[0] * 3 + row[1] + 1) as f64
    });
    let r = FunctionalRelation::complete("r", Schema::new(vec![b, c]).unwrap(), &cat, |row| {
        (row[0] + 2 * row[1] + 1) as f64
    });
    (cat, l, r)
}

fn injected(site: &str) -> AlgebraError {
    AlgebraError::FaultInjected(site.to_string())
}

/// Every instrumented operator: arming the site fails exactly that call,
/// and the very next call (the retry a fallback chain would make)
/// succeeds because Nth arms disarm after firing. Each call runs in a
/// fresh [`ExecContext`], the carrier of the fault hooks.
#[test]
fn each_operator_site_fires_once() {
    let _g = lock();
    fault::clear_all();
    let (cat, l, r) = fixtures();
    let a = cat.var("a").unwrap();
    let sr = SemiringKind::SumProduct;

    let calls: Vec<(&str, OpCall<'_>)> = vec![
        (
            "product_join",
            Box::new(|| ops::product_join(&mut ExecContext::new(sr), &l, &r)),
        ),
        (
            "group_by",
            Box::new(|| ops::group_by(&mut ExecContext::new(sr), &l, &[a])),
        ),
        (
            "select_eq",
            Box::new(|| ops::select_eq(&mut ExecContext::new(sr), &l, &[(a, 0)])),
        ),
        (
            "product_semijoin",
            Box::new(|| ops::product_semijoin(&mut ExecContext::new(sr), &l, &r)),
        ),
        (
            "update_semijoin",
            Box::new(|| ops::update_semijoin(&mut ExecContext::new(sr), &l, &r)),
        ),
        (
            "divide_join",
            Box::new(|| ops::divide_join(&mut ExecContext::new(sr), &l, &r)),
        ),
        (
            "naive_mpf",
            Box::new(|| ops::naive_mpf(&mut ExecContext::new(sr), &[&l, &r], &[], &[a])),
        ),
        (
            "merge_join",
            Box::new(|| sort_ops::merge_join(&mut ExecContext::new(sr), &l, &r)),
        ),
        (
            "sort_group_by",
            Box::new(|| sort_ops::sort_group_by(&mut ExecContext::new(sr), &l, &[a])),
        ),
        (
            "grace_join",
            Box::new(|| partitioned::grace_join(&mut ExecContext::new(sr), &l, &r, 4)),
        ),
        (
            "parallel_join",
            Box::new(|| partitioned::parallel_join(&mut ExecContext::new(sr), &l, &r, 2)),
        ),
        (
            "parallel_group_by",
            Box::new(|| partitioned::parallel_group_by(&mut ExecContext::new(sr), &l, &[a], 2)),
        ),
    ];

    for (site, call) in &calls {
        fault::inject(site, 1);
        assert_eq!(call().unwrap_err(), injected(site), "site {site}");
        assert!(call().is_ok(), "site {site} must disarm after firing");
    }
}

#[test]
fn second_invocation_faults_leave_first_intact() {
    let _g = lock();
    fault::clear_all();
    let (cat, l, _) = fixtures();
    let a = cat.var("a").unwrap();
    let sr = SemiringKind::SumProduct;

    fault::inject("group_by", 2);
    let first = ops::raw::group_by(sr, &l, &[a]).unwrap();
    assert_eq!(
        ops::raw::group_by(sr, &l, &[a]).unwrap_err(),
        injected("group_by")
    );
    // Disarmed again; results are unaffected by the fault machinery.
    assert!(first.function_eq(&ops::raw::group_by(sr, &l, &[a]).unwrap()));
}

#[test]
fn executor_surfaces_faults_as_errors() {
    let _g = lock();
    fault::clear_all();
    let (_, l, r) = fixtures();
    let mut s = RelationStore::new();
    s.insert(l);
    s.insert(r);
    let exec = Executor::new(&s, SemiringKind::SumProduct);
    let plan = Plan::group_by(Plan::join(Plan::scan("l"), Plan::scan("r")), vec![]);

    fault::inject_always("product_join");
    assert_eq!(exec.execute(&plan).unwrap_err(), injected("product_join"));
    fault::clear("product_join");
    assert!(exec.execute(&plan).is_ok());
}

/// Work done before a fault fires is not lost: a caller-owned context
/// keeps the stats of the operators that completed, which is what lets
/// the engine report total work across failed fallback attempts.
#[test]
fn context_keeps_stats_accumulated_before_the_fault() {
    let _g = lock();
    fault::clear_all();
    let (_, l, r) = fixtures();
    let mut s = RelationStore::new();
    s.insert(l);
    s.insert(r);
    let exec = Executor::new(&s, SemiringKind::SumProduct);
    let plan = Plan::group_by(Plan::join(Plan::scan("l"), Plan::scan("r")), vec![]);
    let physical = exec.lower(&plan).unwrap();

    // Fail the group-by, after the join already ran.
    fault::inject("group_by", 1);
    let mut cx = ExecContext::new(SemiringKind::SumProduct);
    assert_eq!(
        exec.execute_physical_in(&mut cx, &physical).unwrap_err(),
        injected("group_by")
    );
    let stats = cx.stats();
    assert_eq!(stats.joins, 1, "the join before the fault is on record");
    assert_eq!(stats.group_bys, 0);
    assert_eq!(stats.rows_scanned, 18);
    fault::clear_all();

    // A direct PhysicalPlan round-trip also surfaces the fault.
    fault::inject_always("sort_group_by");
    let sorted = PhysicalPlan::GroupBy {
        input: Box::new(PhysicalPlan::Scan {
            relation: "l".into(),
        }),
        group_vars: vec![],
        algo: mpf_algebra::AggAlgo::SortAgg,
    };
    assert_eq!(
        exec.execute_physical(&sorted).unwrap_err(),
        injected("sort_group_by")
    );
    fault::clear_all();
}
