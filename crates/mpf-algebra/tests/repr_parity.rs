//! Representation parity: whatever `MPF_REPR` / `MPF_DENSE` select —
//! row-major hash, CSR sparse tensor, or dense odometer — answers are the
//! same function, for every semiring, at every density band, at every
//! thread count. Modes are pinned on the [`ExecContext`] rather than
//! through the environment (tests share a process; the env vars are read
//! once per context build), which is also why CI runs this suite under
//! `MPF_REPR=off|sparse|auto` × `MPF_DENSE=off|auto`: the explicit-mode
//! tests must hold either way.
//!
//! The density sweep mirrors the representation lattice the planner works
//! with: 0.005 (below the sparse auto floor), 0.05 and 0.3 (the sparse
//! band), 0.9 (dense territory).

use mpf_algebra::{
    ops, sparse, AggAlgo, DenseMode, ExecContext, JoinAlgo, PhysicalPlan, Plan, RelationStore,
    ReprMode, Executor,
};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};
use proptest::prelude::*;

const DENSITIES: [f64; 4] = [0.005, 0.05, 0.3, 0.9];
const THREADS: [usize; 2] = [1, 4];
const REPRS: [ReprMode; 3] = [ReprMode::Off, ReprMode::Sparse, ReprMode::Auto];
const DENSES: [DenseMode; 2] = [DenseMode::Off, DenseMode::Auto];

/// Deterministic per-cell inclusion decision (split-mix style hash), so a
/// (density, salt) pair always generates the same relation.
fn keep_cell(cell: u64, salt: u64, density: f64) -> bool {
    let mut x = cell.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    ((x >> 11) as f64 / (1u64 << 53) as f64) < density
}

/// A functional relation over `vars` whose support is a deterministic
/// `density` fraction of the domain grid, with semiring-safe measures.
fn sparse_rel(
    name: &str,
    vars: Vec<VarId>,
    doms: &[u64],
    density: f64,
    salt: u64,
    sr: SemiringKind,
) -> FunctionalRelation {
    let cells: u64 = doms.iter().product();
    let measure = |cell: u64| {
        let raw = ((cell.wrapping_add(salt * 7)) % 5 + 1) as f64 / 2.0;
        if sr == SemiringKind::BoolOrAnd {
            (cell.wrapping_add(salt)) as f64 % 2.0
        } else {
            raw
        }
    };
    let rows = (0..cells).filter(|&c| keep_cell(c, salt, density)).map(|c| {
        let mut row = Vec::with_capacity(doms.len());
        let mut rest = c;
        for &d in doms.iter().rev() {
            row.push((rest % d) as u32);
            rest /= d;
        }
        row.reverse();
        (row, measure(c))
    });
    FunctionalRelation::from_rows(name, Schema::new(vars).unwrap(), rows).unwrap()
}

/// The chain fixture the sweep runs on: r1(a,b), r2(b,c), r3(c,d) over
/// 6-value domains at the given density.
fn chain(sr: SemiringKind, density: f64) -> ([FunctionalRelation; 3], [VarId; 4]) {
    let mut cat = Catalog::new();
    let a = cat.add_var("a", 6).unwrap();
    let b = cat.add_var("b", 6).unwrap();
    let c = cat.add_var("c", 6).unwrap();
    let d = cat.add_var("d", 6).unwrap();
    (
        [
            sparse_rel("r1", vec![a, b], &[6, 6], density, 1, sr),
            sparse_rel("r2", vec![b, c], &[6, 6], density, 2, sr),
            sparse_rel("r3", vec![c, d], &[6, 6], density, 3, sr),
        ],
        [a, b, c, d],
    )
}

/// A variable-elimination pipeline (eliminate b, then c, then marginalize
/// onto a) under one pinned mode triple. Every operator dispatches through
/// the three-way `sparse::join_auto` / `sparse::agg_auto` selection.
fn ve_chain(
    sr: SemiringKind,
    rels: &[FunctionalRelation; 3],
    vars: &[VarId; 4],
    repr: ReprMode,
    dense: DenseMode,
    threads: usize,
) -> (FunctionalRelation, mpf_algebra::ExecStats) {
    let [a, _, c, d] = *vars;
    let mut cx = ExecContext::new(sr)
        .with_repr(repr)
        .with_dense(dense)
        .with_threads(threads);
    let t1 = sparse::join_auto(&mut cx, &rels[0], &rels[1]).unwrap();
    let t1 = sparse::agg_auto(&mut cx, &t1, &[a, c]).unwrap();
    let t2 = sparse::join_auto(&mut cx, &t1, &rels[2]).unwrap();
    let t2 = sparse::agg_auto(&mut cx, &t2, &[a, d]).unwrap();
    let out = sparse::agg_auto(&mut cx, &t2, &[a]).unwrap();
    (out, *cx.stats())
}

/// The full mode matrix answers identically at every density band, for
/// every semiring, at every thread count — and the forced-sparse runs
/// actually take the sparse kernels whenever any work exists.
#[test]
fn density_sweep_mode_matrix_parity() {
    for density in DENSITIES {
        for sr in SemiringKind::ALL {
            let (rels, vars) = chain(sr, density);
            let (baseline, _) =
                ve_chain(sr, &rels, &vars, ReprMode::Off, DenseMode::Off, 1);
            for repr in REPRS {
                for dense in DENSES {
                    for t in THREADS {
                        let (got, stats) = ve_chain(sr, &rels, &vars, repr, dense, t);
                        assert!(
                            baseline.function_eq_in(&got, sr),
                            "diverged: density {density} sr {sr:?} repr {repr:?} \
                             dense {dense:?} threads {t}"
                        );
                        if repr == ReprMode::Off {
                            assert_eq!(
                                stats.sparse_joins + stats.sparse_group_bys,
                                0,
                                "off means off: sr {sr:?}"
                            );
                        }
                        if repr == ReprMode::Sparse
                            && dense == DenseMode::Off
                            && rels.iter().all(|r| !r.is_empty())
                        {
                            assert!(
                                stats.sparse_joins + stats.sparse_group_bys > 0,
                                "forced sparse ran no sparse kernels: density \
                                 {density} sr {sr:?} threads {t}"
                            );
                        }
                    }
                }
            }
        }
    }
}

/// Physical plans annotated `SparseTensor`/`SparseAgg` by the planner
/// execute through the interpreter to the same answer as the all-hash
/// plan, at every thread count, and the executed operators are counted.
#[test]
fn sparse_plans_match_hash_plans_through_the_interpreter() {
    let sr = SemiringKind::SumProduct;
    let (rels, [_, b, _, _]) = chain(sr, 0.3);
    let mut store = RelationStore::new();
    store.insert(rels[0].clone());
    store.insert(rels[1].clone());
    let logical = Plan::group_by(Plan::join(Plan::scan("r1"), Plan::scan("r2")), vec![b]);
    let (want, _) = Executor::new(&store, sr)
        .execute_physical(&PhysicalPlan::default_hash(&logical))
        .unwrap();
    let sparse_plan = PhysicalPlan::from_logical(
        &logical,
        &mut |_, _| JoinAlgo::SparseTensor,
        &mut |_, _| AggAlgo::SparseAgg,
    );
    for t in THREADS {
        let (got, stats) = Executor::new(&store, sr)
            .with_threads(t)
            .execute_physical(&sparse_plan)
            .unwrap();
        assert!(want.function_eq(&got), "threads {t}");
        assert_eq!(stats.sparse_joins, 1, "threads {t}");
        assert_eq!(stats.sparse_group_bys, 1, "threads {t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random measures and random support holes: mode only ever picks the
    /// kernel, never the answer. Mirrors `mode_never_changes_answers` in
    /// the dense parity suite, over the representation dimension.
    #[test]
    fn repr_never_changes_answers(
        m1 in proptest::collection::vec(0u8..10, 16),
        m2 in proptest::collection::vec(0u8..10, 16),
        hole_picks in proptest::collection::vec(0usize..16, 0..8),
        sr_idx in 0usize..7,
        group_var in 0usize..2,
    ) {
        let holes: std::collections::BTreeSet<usize> = hole_picks.into_iter().collect();
        let sr = SemiringKind::ALL[sr_idx];
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 4).unwrap();
        let b = cat.add_var("b", 4).unwrap();
        let c = cat.add_var("c", 4).unwrap();
        let conv = |m: u8| if sr == SemiringKind::BoolOrAnd { (m % 2) as f64 } else { m as f64 };
        let r1 = FunctionalRelation::from_rows(
            "r1",
            Schema::new(vec![a, b]).unwrap(),
            (0..16u32)
                .filter(|i| !holes.contains(&(*i as usize)))
                .map(|i| (vec![i / 4, i % 4], conv(m1[i as usize]))),
        )
        .unwrap();
        let r2 = FunctionalRelation::from_rows(
            "r2",
            Schema::new(vec![b, c]).unwrap(),
            (0..16u32).map(|i| (vec![i / 4, i % 4], conv(m2[i as usize]))),
        )
        .unwrap();
        let gv = [[a, c][group_var]];
        let want_join = ops::product_join(&mut ExecContext::new(sr), &r1, &r2).unwrap();
        let want = ops::group_by(&mut ExecContext::new(sr), &want_join, &gv).unwrap();
        for repr in REPRS {
            for dense in DENSES {
                let mut cx = ExecContext::new(sr).with_repr(repr).with_dense(dense);
                let j = sparse::join_auto(&mut cx, &r1, &r2).unwrap();
                let g = sparse::agg_auto(&mut cx, &j, &gv).unwrap();
                prop_assert!(
                    want.function_eq_in(&g, sr),
                    "sr {sr:?} repr {repr:?} dense {dense:?} holes {holes:?}"
                );
            }
        }
    }
}
