//! Property tests for the parallel execution layer: at every thread
//! count, the parallel operators and the concurrent subplan scheduler
//! compute *bit-identical* results to the sequential pipeline — same
//! support, same measures, same stats counters — and trip the same typed
//! errors when a budget is exceeded or the query is cancelled.
//!
//! The determinism argument being checked: a join output measure is one
//! multiplication computed in exactly one partition, and all rows of a
//! group hash to one partition where they fold in input order, so no
//! float operation is ever reassociated by parallelism.

use mpf_algebra::{
    ops, partitioned, AggAlgo, AlgebraError, CancelToken, ExecContext, ExecLimits, Executor,
    JoinAlgo, PhysicalPlan, Plan, RelationStore, ResourceKind,
};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};
use proptest::prelude::*;

const SEMIRINGS: [SemiringKind; 7] = [
    SemiringKind::SumProduct,
    SemiringKind::MinSum,
    SemiringKind::MaxSum,
    SemiringKind::MinProduct,
    SemiringKind::MaxProduct,
    SemiringKind::BoolOrAnd,
    SemiringKind::LogSumProduct,
];
const THREADS: [usize; 4] = [1, 2, 3, 8];

/// Exact equality up to row/column order — no float tolerance.
fn bit_identical(a: &FunctionalRelation, b: &FunctionalRelation) -> bool {
    let (a, b) = (a.canonicalized(), b.canonicalized());
    a.schema() == b.schema() && a.len() == b.len() && a.rows().eq(b.rows())
}

/// r1(a, b) and r2(b, c) over 3-value domains with the given measures.
fn rels(sr: SemiringKind, m1: &[u8], m2: &[u8]) -> (FunctionalRelation, FunctionalRelation, [VarId; 3]) {
    let mut cat = Catalog::new();
    let a = cat.add_var("a", 3).unwrap();
    let b = cat.add_var("b", 3).unwrap();
    let c = cat.add_var("c", 3).unwrap();
    // BoolOrAnd measures must stay in {0, 1}.
    let conv = |m: u8| {
        if sr == SemiringKind::BoolOrAnd {
            (m % 2) as f64
        } else {
            m as f64
        }
    };
    let r1 = FunctionalRelation::from_rows(
        "r1",
        Schema::new(vec![a, b]).unwrap(),
        (0..9u32).map(|i| (vec![i / 3, i % 3], conv(m1[i as usize]))),
    )
    .unwrap();
    let r2 = FunctionalRelation::from_rows(
        "r2",
        Schema::new(vec![b, c]).unwrap(),
        (0..9u32).map(|i| (vec![i / 3, i % 3], conv(m2[i as usize]))),
    )
    .unwrap();
    (r1, r2, [a, b, c])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel join and group-by are bit-identical to the sequential
    /// operators for every semiring at every thread count, including
    /// partition counts that exceed the row count.
    #[test]
    fn parallel_operators_match_sequential(
        m1 in proptest::collection::vec(0u8..10, 9),
        m2 in proptest::collection::vec(0u8..10, 9),
        partitions in 2usize..16,
    ) {
        for sr in SEMIRINGS {
            let (r1, r2, [_, b, _]) = rels(sr, &m1, &m2);
            let want_join = ops::product_join(&mut ExecContext::new(sr), &r1, &r2).unwrap();
            for t in THREADS {
                let mut cx = ExecContext::new(sr);
                let got_join =
                    partitioned::parallel_join_parts(&mut cx, &r1, &r2, t, partitions).unwrap();
                prop_assert!(
                    bit_identical(&got_join, &want_join),
                    "join diverged: sr {sr:?} threads {t} partitions {partitions}"
                );
                // Feed the aggregation the *same* input rows in the same
                // order, so "bit-identical" checks the operator itself
                // rather than fold orders inherited from upstream.
                let want_agg =
                    ops::group_by(&mut ExecContext::new(sr), &got_join, &[b]).unwrap();
                let got_agg = partitioned::parallel_group_by_parts(
                    &mut cx, &got_join, &[b], t, partitions,
                )
                .unwrap();
                prop_assert!(
                    bit_identical(&got_agg, &want_agg),
                    "group-by diverged: sr {sr:?} threads {t} partitions {partitions}"
                );
            }
        }
    }

    /// Full physical plans annotated with the parallel operators — run
    /// through the interpreter, which also forks independent subtrees —
    /// are *bit-identical across thread counts* (the worker count never
    /// changes a fold order, only the partition count shapes the data
    /// flow) and function-equal to the all-hash sequential execution,
    /// with the same stats counters.
    #[test]
    fn parallel_plans_match_hash_plans(
        m1 in proptest::collection::vec(0u8..10, 9),
        m2 in proptest::collection::vec(0u8..10, 9),
        sr_idx in 0usize..7,
        group_var in 0usize..3,
    ) {
        let sr = SEMIRINGS[sr_idx];
        let (r1, r2, vars) = rels(sr, &m1, &m2);
        let mut store = RelationStore::new();
        store.insert(r1);
        store.insert(r2);
        // Both join inputs contain an operator, so the subplan scheduler
        // forks when threads allow.
        let logical = Plan::group_by(
            Plan::join(
                Plan::group_by(Plan::scan("r1"), vec![vars[0], vars[1]]),
                Plan::group_by(Plan::scan("r2"), vec![vars[1], vars[2]]),
            ),
            vec![vars[group_var]],
        );
        let sequential = Executor::new(&store, sr).with_threads(1);
        let (want, want_stats) = sequential
            .execute_physical(&PhysicalPlan::default_hash(&logical))
            .unwrap();
        let parallel_plan = PhysicalPlan::from_logical(
            &logical,
            &mut |_, _| JoinAlgo::Parallel { partitions: 8 },
            &mut |_, _| AggAlgo::ParallelAgg { partitions: 8 },
        );
        let mut single_worker: Option<FunctionalRelation> = None;
        for t in THREADS {
            let exec = Executor::new(&store, sr).with_threads(t);
            let (got, stats) = exec.execute_physical(&parallel_plan).unwrap();
            prop_assert!(got.function_eq_in(&want, sr), "sr {sr:?} threads {t}");
            match &single_worker {
                None => single_worker = Some(got),
                Some(base) => prop_assert!(
                    bit_identical(&got, base),
                    "thread count changed bits: sr {sr:?} threads {t}"
                ),
            }
            prop_assert_eq!(stats.joins, want_stats.joins);
            prop_assert_eq!(stats.group_bys, want_stats.group_bys);
            prop_assert_eq!(stats.rows_scanned, want_stats.rows_scanned);
        }
    }
}

/// The plan used by the budget-parity tests: 27-row join, then a
/// marginalization.
fn capped_exec(store: &RelationStore, limits: ExecLimits, threads: usize) -> Executor<'_, RelationStore> {
    Executor::with_limits(store, SemiringKind::SumProduct, limits).with_threads(threads)
}

fn parity_fixture() -> (RelationStore, Plan, PhysicalPlan) {
    let (r1, r2, [_, b, _]) = rels(SemiringKind::SumProduct, &[1u8; 9], &[1u8; 9]);
    let mut store = RelationStore::new();
    store.insert(r1);
    store.insert(r2);
    let logical = Plan::group_by(Plan::join(Plan::scan("r1"), Plan::scan("r2")), vec![b]);
    let parallel = PhysicalPlan::from_logical(
        &logical,
        &mut |_, _| JoinAlgo::Parallel { partitions: 8 },
        &mut |_, _| AggAlgo::ParallelAgg { partitions: 8 },
    );
    (store, logical, parallel)
}

/// A worker tripping the shared row cap surfaces the same typed error the
/// sequential pipeline reports, at every thread count.
#[test]
fn row_cap_parity_under_parallelism() {
    let (store, logical, parallel) = parity_fixture();
    let limits = ExecLimits::none().with_max_output_rows(10);
    let Err(AlgebraError::ResourceExhausted { resource: want, limit: 10, .. }) =
        capped_exec(&store, limits.clone(), 1).execute(&logical)
    else {
        panic!("sequential run must trip the row cap");
    };
    assert_eq!(want, ResourceKind::OutputRows);
    for t in THREADS {
        match capped_exec(&store, limits.clone(), t).execute_physical(&parallel) {
            Err(AlgebraError::ResourceExhausted { resource, limit: 10, .. }) => {
                assert_eq!(resource, want, "threads {t}");
            }
            other => panic!("threads {t}: expected OutputRows trip, got {other:?}"),
        }
    }
}

/// Same for the shared total-cells budget, which workers charge live.
#[test]
fn cell_cap_parity_under_parallelism() {
    let (store, logical, parallel) = parity_fixture();
    let limits = ExecLimits::none().with_max_total_cells(20);
    let Err(AlgebraError::ResourceExhausted { resource: want, .. }) =
        capped_exec(&store, limits.clone(), 1).execute(&logical)
    else {
        panic!("sequential run must trip the cell cap");
    };
    assert_eq!(want, ResourceKind::TotalCells);
    for t in THREADS {
        match capped_exec(&store, limits.clone(), t).execute_physical(&parallel) {
            Err(AlgebraError::ResourceExhausted { resource, .. }) => {
                assert_eq!(resource, want, "threads {t}");
            }
            other => panic!("threads {t}: expected TotalCells trip, got {other:?}"),
        }
    }
}

/// A cancelled token stops the parallel operators (workers poll it at
/// partition checkpoints) with the typed `Cancelled` error.
#[test]
fn cancellation_stops_parallel_execution() {
    let (store, _, parallel) = parity_fixture();
    for t in THREADS {
        let token = CancelToken::new();
        token.cancel();
        let exec = capped_exec(
            &store,
            ExecLimits::none().with_cancel_token(token),
            t,
        );
        match exec.execute_physical(&parallel) {
            Err(AlgebraError::Cancelled) => {}
            other => panic!("threads {t}: expected Cancelled, got {other:?}"),
        }
    }
}
