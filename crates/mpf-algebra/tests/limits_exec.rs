//! Executor-level tests for resource budgets ([`mpf_algebra::ExecLimits`]):
//! each limit trips with a typed error, and — the transparency property —
//! limits set high enough never change a query's result.

use std::time::Duration;

use mpf_algebra::{
    AlgebraError, CancelToken, ExecLimits, Executor, Plan, RelationStore, ResourceKind,
};
use mpf_semiring::SemiringKind;
use mpf_storage::{Catalog, FunctionalRelation, Schema, VarId};
use proptest::prelude::*;

/// r1(a, b) ⋈ r2(b, c) over 3-value domains, with the given measures
/// (row-major over the complete relations).
fn store_with(m1: &[f64], m2: &[f64]) -> (RelationStore, VarId, VarId, VarId) {
    let mut c = Catalog::new();
    let a = c.add_var("a", 3).unwrap();
    let b = c.add_var("b", 3).unwrap();
    let d = c.add_var("c", 3).unwrap();
    let mut s = RelationStore::new();
    s.insert(
        FunctionalRelation::from_rows(
            "r1",
            Schema::new(vec![a, b]).unwrap(),
            (0..9u32).map(|i| (vec![i / 3, i % 3], m1[i as usize])),
        )
        .unwrap(),
    );
    s.insert(
        FunctionalRelation::from_rows(
            "r2",
            Schema::new(vec![b, d]).unwrap(),
            (0..9u32).map(|i| (vec![i / 3, i % 3], m2[i as usize])),
        )
        .unwrap(),
    );
    (s, a, b, d)
}

fn join_plan(group: Vec<VarId>) -> Plan {
    Plan::group_by(Plan::join(Plan::scan("r1"), Plan::scan("r2")), group)
}

#[test]
fn row_cap_trips_with_typed_error() {
    let (s, _, _, d) = store_with(&[1.0; 9], &[1.0; 9]);
    // The join produces 27 rows; cap operators at 10.
    let exec = Executor::with_limits(
        &s,
        SemiringKind::SumProduct,
        ExecLimits::none().with_max_output_rows(10),
    );
    match exec.execute(&join_plan(vec![d])) {
        Err(AlgebraError::ResourceExhausted {
            resource: ResourceKind::OutputRows,
            limit: 10,
            ..
        }) => {}
        other => panic!("expected OutputRows trip, got {other:?}"),
    }
}

#[test]
fn cell_cap_trips_on_first_scan() {
    let (s, _, _, d) = store_with(&[1.0; 9], &[1.0; 9]);
    let exec = Executor::with_limits(
        &s,
        SemiringKind::SumProduct,
        ExecLimits::none().with_max_total_cells(1),
    );
    match exec.execute(&join_plan(vec![d])) {
        Err(AlgebraError::ResourceExhausted {
            resource: ResourceKind::TotalCells,
            limit: 1,
            observed,
        }) => assert!(observed > 1, "scan must charge all its cells"),
        other => panic!("expected TotalCells trip, got {other:?}"),
    }
}

#[test]
fn cancellation_stops_execution() {
    let (s, _, _, d) = store_with(&[1.0; 9], &[1.0; 9]);
    let token = CancelToken::new();
    token.cancel();
    let exec = Executor::with_limits(
        &s,
        SemiringKind::SumProduct,
        ExecLimits::none().with_cancel_token(token),
    );
    assert_eq!(
        exec.execute(&join_plan(vec![d])).unwrap_err(),
        AlgebraError::Cancelled
    );
}

#[test]
fn expired_deadline_trips() {
    let (s, _, _, d) = store_with(&[1.0; 9], &[1.0; 9]);
    let exec = Executor::with_limits(
        &s,
        SemiringKind::SumProduct,
        ExecLimits::none().with_timeout(Duration::ZERO),
    );
    match exec.execute(&join_plan(vec![d])) {
        Err(AlgebraError::ResourceExhausted {
            resource: ResourceKind::WallClock,
            ..
        }) => {}
        other => panic!("expected WallClock trip, got {other:?}"),
    }
}

#[test]
fn unlimited_limits_mean_no_budget() {
    let (s, _, _, _) = store_with(&[1.0; 9], &[1.0; 9]);
    let exec = Executor::with_limits(&s, SemiringKind::SumProduct, ExecLimits::none());
    assert!(exec.budget().is_none());
}

proptest! {
    /// Guardrail transparency: under any semiring, measures, and grouping,
    /// an execution with limits far above the query's needs returns exactly
    /// the relation an unlimited execution returns.
    #[test]
    fn generous_limits_are_transparent(
        m1 in prop::collection::vec(0.1f64..10.0, 9),
        m2 in prop::collection::vec(0.1f64..10.0, 9),
        which in 0usize..4,
        sr_idx in 0usize..3,
    ) {
        let (s, a, _, d) = store_with(&m1, &m2);
        let group = match which {
            0 => vec![a],
            1 => vec![d],
            2 => vec![a, d],
            _ => vec![],
        };
        let sr = [
            SemiringKind::SumProduct,
            SemiringKind::MinSum,
            SemiringKind::MaxProduct,
        ][sr_idx];
        let plan = join_plan(group);

        let unlimited = Executor::new(&s, sr);
        let (want, want_stats) = unlimited.execute(&plan).unwrap();

        let generous = ExecLimits::none()
            .with_max_output_rows(1_000_000)
            .with_max_total_cells(10_000_000)
            .with_timeout(Duration::from_secs(3600))
            .with_cancel_token(CancelToken::new());
        let limited = Executor::with_limits(&s, sr, generous);
        let (got, got_stats) = limited.execute(&plan).unwrap();

        prop_assert!(want.function_eq(&got));
        prop_assert_eq!(want_stats.rows_processed, got_stats.rows_processed);
        // The budget observed the work even though nothing tripped.
        let budget = limited.budget().unwrap();
        prop_assert!(budget.cells_used() > 0);
    }
}
