//! Typed parsing for the engine's environment knobs.
//!
//! The execution layer reads five environment variables: `MPF_THREADS`
//! (worker threads, [`crate::limits::default_threads`]), `MPF_DENSE`
//! (dense-kernel dispatch, [`crate::DenseMode::from_env`]), `MPF_REPR`
//! (sparse-tensor dispatch, [`crate::ReprMode::from_env`]), `MPF_KERNEL`
//! (kernel inner-loop mode, [`crate::KernelMode::from_env`]), and
//! `MPF_CACHE_BYTES` (the engine view-cache byte budget,
//! [`cache_bytes_from_env`]). The runtime
//! defaults are deliberately lenient — a malformed value falls back so a
//! hot query path never errors on configuration — but a *service* should
//! refuse to start on a knob it cannot honor rather than silently run
//! with different parallelism or kernels than the operator asked for.
//!
//! [`validate_env`] is that strict startup check: it parses every knob
//! and returns a typed [`ConfigError`] naming the variable, the rejected
//! value, and what would have been accepted. `Database::from_env` and the
//! `mpf_serve` binary call it before serving anything.

use crate::dense::{DenseMode, KernelMode};
use crate::sparse::ReprMode;

/// A configuration knob held a value that does not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The environment variable (e.g. `MPF_THREADS`).
    pub var: String,
    /// The rejected value, verbatim.
    pub value: String,
    /// What the knob accepts, for the error message.
    pub expected: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid {}=`{}`: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for ConfigError {}

/// Environment knobs validated at service startup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EnvKnobs {
    /// `MPF_THREADS`, when set and valid.
    pub threads: Option<usize>,
    /// `MPF_DENSE`, when set and valid.
    pub dense: Option<DenseMode>,
    /// `MPF_REPR`, when set and valid.
    pub repr: Option<ReprMode>,
    /// `MPF_KERNEL`, when set and valid.
    pub kernel: Option<KernelMode>,
    /// `MPF_CACHE_BYTES`, when set and valid (`0` disables the cache).
    pub cache_bytes: Option<u64>,
}

/// Parse an `MPF_THREADS` value: a positive integer.
pub fn parse_threads(value: &str) -> Result<usize, ConfigError> {
    match value.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(ConfigError {
            var: "MPF_THREADS".into(),
            value: value.into(),
            expected: "a positive integer",
        }),
    }
}

/// Parse an `MPF_DENSE` value: `off`/`0`/`false`, `on`/`1`/`true`, or
/// `auto`.
pub fn parse_dense(value: &str) -> Result<DenseMode, ConfigError> {
    match value.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "false" => Ok(DenseMode::Off),
        "on" | "1" | "true" => Ok(DenseMode::On),
        "auto" => Ok(DenseMode::Auto),
        _ => Err(ConfigError {
            var: "MPF_DENSE".into(),
            value: value.into(),
            expected: "one of `off`, `on`, `auto` (or 0/1/false/true)",
        }),
    }
}

/// Parse an `MPF_REPR` value: `off`/`0`/`false`,
/// `sparse`/`on`/`1`/`true`, or `auto`.
pub fn parse_repr(value: &str) -> Result<ReprMode, ConfigError> {
    match value.trim().to_ascii_lowercase().as_str() {
        "off" | "0" | "false" => Ok(ReprMode::Off),
        "sparse" | "on" | "1" | "true" => Ok(ReprMode::Sparse),
        "auto" => Ok(ReprMode::Auto),
        _ => Err(ConfigError {
            var: "MPF_REPR".into(),
            value: value.into(),
            expected: "one of `off`, `sparse`, `auto` (or 0/1/false/true)",
        }),
    }
}

/// Parse an `MPF_KERNEL` value: `scalar` or `chunked`.
pub fn parse_kernel(value: &str) -> Result<KernelMode, ConfigError> {
    match value.trim().to_ascii_lowercase().as_str() {
        "scalar" => Ok(KernelMode::Scalar),
        "chunked" => Ok(KernelMode::Chunked),
        _ => Err(ConfigError {
            var: "MPF_KERNEL".into(),
            value: value.into(),
            expected: "one of `scalar`, `chunked`",
        }),
    }
}

/// Parse an `MPF_CACHE_BYTES` value: a non-negative integer byte count,
/// optionally with a binary `k`/`m`/`g` suffix (`64m` = 64 MiB). `0`
/// disables the engine view cache.
pub fn parse_cache_bytes(value: &str) -> Result<u64, ConfigError> {
    let err = || ConfigError {
        var: "MPF_CACHE_BYTES".into(),
        value: value.into(),
        expected: "a non-negative byte count, optionally with a k/m/g suffix",
    };
    let t = value.trim().to_ascii_lowercase();
    let (digits, shift) = match t.as_bytes().last() {
        Some(b'k') => (&t[..t.len() - 1], 10u32),
        Some(b'm') => (&t[..t.len() - 1], 20),
        Some(b'g') => (&t[..t.len() - 1], 30),
        _ => (t.as_str(), 0),
    };
    // A bare suffix (`k`) or anything non-numeric is rejected; so is a
    // count that overflows u64 once scaled.
    let n: u64 = if digits.is_empty() {
        return Err(err());
    } else {
        digits.parse().map_err(|_| err())?
    };
    n.checked_shl(shift)
        .filter(|scaled| scaled >> shift == n)
        .ok_or_else(err)
}

/// Lenient `MPF_CACHE_BYTES` read for runtime defaults: unset or
/// malformed means `0` (cache disabled) so a library user's hot path
/// never errors on configuration. Services wanting strictness go
/// through [`validate_env`].
pub fn cache_bytes_from_env() -> u64 {
    std::env::var("MPF_CACHE_BYTES")
        .ok()
        .and_then(|v| parse_cache_bytes(&v).ok())
        .unwrap_or(0)
}

/// Strictly parse every environment knob, rejecting malformed values
/// instead of falling back. Unset variables are fine (`None`).
pub fn validate_env() -> Result<EnvKnobs, ConfigError> {
    let threads = match std::env::var("MPF_THREADS") {
        Ok(v) => Some(parse_threads(&v)?),
        Err(_) => None,
    };
    let dense = match std::env::var("MPF_DENSE") {
        Ok(v) => Some(parse_dense(&v)?),
        Err(_) => None,
    };
    let repr = match std::env::var("MPF_REPR") {
        Ok(v) => Some(parse_repr(&v)?),
        Err(_) => None,
    };
    let kernel = match std::env::var("MPF_KERNEL") {
        Ok(v) => Some(parse_kernel(&v)?),
        Err(_) => None,
    };
    let cache_bytes = match std::env::var("MPF_CACHE_BYTES") {
        Ok(v) => Some(parse_cache_bytes(&v)?),
        Err(_) => None,
    };
    Ok(EnvKnobs {
        threads,
        dense,
        repr,
        kernel,
        cache_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1").unwrap(), 1);
        assert_eq!(parse_threads(" 8 ").unwrap(), 8);
    }

    #[test]
    fn threads_rejects_malformed_values() {
        for bad in ["0", "-2", "four", "", "1.5", "0x4"] {
            let e = parse_threads(bad).unwrap_err();
            assert_eq!(e.var, "MPF_THREADS");
            assert_eq!(e.value, bad);
            assert!(e.to_string().contains("positive integer"), "{e}");
        }
    }

    #[test]
    fn dense_accepts_documented_spellings() {
        assert_eq!(parse_dense("off").unwrap(), DenseMode::Off);
        assert_eq!(parse_dense("0").unwrap(), DenseMode::Off);
        assert_eq!(parse_dense("FALSE").unwrap(), DenseMode::Off);
        assert_eq!(parse_dense("on").unwrap(), DenseMode::On);
        assert_eq!(parse_dense("1").unwrap(), DenseMode::On);
        assert_eq!(parse_dense(" auto ").unwrap(), DenseMode::Auto);
    }

    #[test]
    fn dense_rejects_malformed_values() {
        for bad in ["dense", "2", "", "yes please"] {
            let e = parse_dense(bad).unwrap_err();
            assert_eq!(e.var, "MPF_DENSE");
            assert_eq!(e.value, bad);
            assert!(e.to_string().contains("`auto`"), "{e}");
        }
    }

    #[test]
    fn repr_accepts_documented_spellings() {
        assert_eq!(parse_repr("off").unwrap(), ReprMode::Off);
        assert_eq!(parse_repr("0").unwrap(), ReprMode::Off);
        assert_eq!(parse_repr("sparse").unwrap(), ReprMode::Sparse);
        assert_eq!(parse_repr("ON").unwrap(), ReprMode::Sparse);
        assert_eq!(parse_repr(" auto ").unwrap(), ReprMode::Auto);
    }

    #[test]
    fn cache_bytes_accepts_counts_and_suffixes() {
        assert_eq!(parse_cache_bytes("0").unwrap(), 0);
        assert_eq!(parse_cache_bytes(" 4096 ").unwrap(), 4096);
        assert_eq!(parse_cache_bytes("64k").unwrap(), 64 << 10);
        assert_eq!(parse_cache_bytes("64M").unwrap(), 64 << 20);
        assert_eq!(parse_cache_bytes("2g").unwrap(), 2 << 30);
    }

    #[test]
    fn cache_bytes_rejects_malformed_values() {
        for bad in ["", "k", "-1", "lots", "1.5m", "99999999999999999999g"] {
            let e = parse_cache_bytes(bad).unwrap_err();
            assert_eq!(e.var, "MPF_CACHE_BYTES");
            assert_eq!(e.value, bad);
            assert!(e.to_string().contains("byte count"), "{e}");
        }
        // Overflow after scaling, not just in the digits.
        assert!(parse_cache_bytes("18446744073709551615k").is_err());
    }

    #[test]
    fn kernel_accepts_documented_spellings() {
        assert_eq!(parse_kernel("scalar").unwrap(), KernelMode::Scalar);
        assert_eq!(parse_kernel(" Chunked ").unwrap(), KernelMode::Chunked);
        assert_eq!(parse_kernel("SCALAR").unwrap(), KernelMode::Scalar);
    }

    #[test]
    fn kernel_rejects_malformed_values() {
        for bad in ["simd", "1", "", "on", "vector"] {
            let e = parse_kernel(bad).unwrap_err();
            assert_eq!(e.var, "MPF_KERNEL");
            assert_eq!(e.value, bad);
            assert!(e.to_string().contains("`chunked`"), "{e}");
        }
    }

    #[test]
    fn repr_rejects_malformed_values() {
        for bad in ["csr", "2", "", "dense"] {
            let e = parse_repr(bad).unwrap_err();
            assert_eq!(e.var, "MPF_REPR");
            assert_eq!(e.value, bad);
            assert!(e.to_string().contains("`sparse`"), "{e}");
        }
    }
}
