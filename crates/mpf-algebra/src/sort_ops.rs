//! Sort-based physical operators: merge join and sort aggregation.
//!
//! The paper contrasts the GDL setting (one algorithm per operation) with
//! the relational setting, where "there are multiple algorithms to
//! implement join (multiplication) and aggregation (summation), and the
//! choice of algorithm is based on the cost of accessing disk-resident
//! operands" (Section 5). These are the sort-based alternatives to the
//! hash operators in [`crate::ops`]; they compute identical functional
//! relations (property-tested) with different cost profiles — sort-based
//! operators cost `O(n log n)` but stream in bounded memory, which is the
//! regime PostgreSQL 8.1 used for large aggregates.
//!
//! Like every operator in this crate, they run through an
//! [`ExecContext`], which carries the semiring, enforces any configured
//! budget, and accumulates [`crate::ExecStats`].

use mpf_semiring::SemiringKind;
use mpf_storage::{FunctionalRelation, Schema, Value, VarId};

use crate::limits::{ExecBudget, OpGuard};
use crate::{AlgebraError, ExecContext, Result};

/// Sort a relation's rows lexicographically by the given column positions,
/// returning the permutation (row indices in sorted order).
fn sort_permutation(rel: &FunctionalRelation, positions: &[usize]) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..rel.len() as u32).collect();
    perm.sort_by(|&x, &y| {
        let (rx, ry) = (rel.row(x as usize), rel.row(y as usize));
        for &p in positions {
            match rx[p].cmp(&ry[p]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
    perm
}

/// Sort-merge product join: both inputs are sorted on the shared variables
/// and merged, emitting the cross product of each matching key group.
/// Function-equal to [`crate::ops::product_join`].
pub fn merge_join(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
) -> Result<FunctionalRelation> {
    cx.fault("merge_join")?;
    let out = merge_join_impl(cx.semiring(), l, r, cx.budget())?;
    cx.record_join(&[l, r], &out);
    Ok(out)
}

fn merge_join_impl(
    sr: SemiringKind,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    let out_schema = l.schema().union(r.schema());
    let mut guard = OpGuard::new(budget, out_schema.arity());
    let shared = l.schema().intersect(r.schema());
    let l_pos = l.schema().positions(shared.vars())?;
    let r_pos = r.schema().positions(shared.vars())?;
    let l_perm = sort_permutation(l, &l_pos);
    let r_perm = sort_permutation(r, &r_pos);

    // Output column sources.
    let srcs: Vec<(bool, usize)> = out_schema
        .iter()
        .map(|v| {
            if let Ok(p) = l.schema().position(v) {
                Ok((true, p))
            } else {
                Ok((false, r.schema().position(v)?))
            }
        })
        .collect::<Result<_>>()?;

    let key_of = |rel: &FunctionalRelation, perm: &[u32], i: usize, pos: &[usize]| -> Vec<Value> {
        let row = rel.row(perm[i] as usize);
        pos.iter().map(|&p| row[p]).collect()
    };

    let mut out = FunctionalRelation::new(
        format!("({}⋈m{})", l.name(), r.name()),
        out_schema.clone(),
    );
    let mut row_buf: Vec<Value> = vec![0; out_schema.arity()];
    let (mut i, mut j) = (0usize, 0usize);
    while i < l_perm.len() && j < r_perm.len() {
        guard.poll()?;
        let lk = key_of(l, &l_perm, i, &l_pos);
        let rk = key_of(r, &r_perm, j, &r_pos);
        match lk.cmp(&rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Extents of the equal-key groups on both sides.
                let i_end = (i..l_perm.len())
                    .find(|&x| key_of(l, &l_perm, x, &l_pos) != lk)
                    .unwrap_or(l_perm.len());
                let j_end = (j..r_perm.len())
                    .find(|&x| key_of(r, &r_perm, x, &r_pos) != rk)
                    .unwrap_or(r_perm.len());
                for &li in &l_perm[i..i_end] {
                    let lrow = l.row(li as usize);
                    let lm = l.measure(li as usize);
                    for &rj in &r_perm[j..j_end] {
                        let rrow = r.row(rj as usize);
                        for (c, &(from_l, p)) in srcs.iter().enumerate() {
                            row_buf[c] = if from_l { lrow[p] } else { rrow[p] };
                        }
                        out.push_row(&row_buf, sr.mul(lm, r.measure(rj as usize)))?;
                        guard.produced()?;
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    guard.finish()?;
    Ok(out)
}

/// Sort-based aggregation: sort on the group variables, then fold runs of
/// equal keys. Function-equal to [`crate::ops::group_by`].
pub fn sort_group_by(
    cx: &mut ExecContext<'_>,
    input: &FunctionalRelation,
    group_vars: &[VarId],
) -> Result<FunctionalRelation> {
    cx.fault("sort_group_by")?;
    let out = sort_group_by_impl(cx.semiring(), input, group_vars, cx.budget())?;
    cx.record_group_by(&[input], &out);
    Ok(out)
}

fn sort_group_by_impl(
    sr: SemiringKind,
    input: &FunctionalRelation,
    group_vars: &[VarId],
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    for &v in group_vars {
        if !input.schema().contains(v) {
            return Err(AlgebraError::GroupVarNotInInput(v));
        }
    }
    let out_schema = Schema::new(group_vars.to_vec())?;
    let positions = input.schema().positions(group_vars)?;
    let perm = sort_permutation(input, &positions);
    let mut guard = OpGuard::new(budget, group_vars.len());

    let mut out = FunctionalRelation::new(format!("γs({})", input.name()), out_schema);
    let mut key_buf: Vec<Value> = vec![0; positions.len()];
    let mut current: Option<(Vec<Value>, f64)> = None;
    for &ri in &perm {
        guard.poll()?;
        let row = input.row(ri as usize);
        for (c, &p) in positions.iter().enumerate() {
            key_buf[c] = row[p];
        }
        let m = input.measure(ri as usize);
        match &mut current {
            Some((key, acc)) if *key == key_buf => {
                let folded = sr.add(*acc, m);
                if !sr.is_valid_accumulation(folded) {
                    return Err(AlgebraError::NonFiniteMeasure {
                        op: "sort_group_by",
                        value: folded,
                    });
                }
                *acc = folded;
            }
            Some((key, acc)) => {
                out.push_row(key, *acc)?;
                guard.produced()?;
                *key = key_buf.clone();
                *acc = m;
            }
            None => current = Some((key_buf.clone(), m)),
        }
    }
    if let Some((key, acc)) = current {
        out.push_row(&key, acc)?;
        guard.produced()?;
    }
    guard.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use mpf_storage::Catalog;

    fn fixtures() -> (Catalog, FunctionalRelation, FunctionalRelation) {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 3).unwrap();
        let b = cat.add_var("b", 3).unwrap();
        let c = cat.add_var("c", 3).unwrap();
        let l = FunctionalRelation::complete(
            "l",
            Schema::new(vec![a, b]).unwrap(),
            &cat,
            |row| (row[0] * 2 + row[1] + 1) as f64,
        );
        let r = FunctionalRelation::complete(
            "r",
            Schema::new(vec![b, c]).unwrap(),
            &cat,
            |row| (row[0] + 3 * row[1] + 1) as f64,
        );
        (cat, l, r)
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let (_, l, r) = fixtures();
        for sr in [SemiringKind::SumProduct, SemiringKind::MinSum] {
            let hash = ops::raw::product_join(sr, &l, &r).unwrap();
            let merge = merge_join(&mut ExecContext::new(sr), &l, &r).unwrap();
            assert!(hash.function_eq(&merge));
        }
    }

    #[test]
    fn merge_join_cross_product() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 2).unwrap();
        let b = cat.add_var("b", 3).unwrap();
        let l = FunctionalRelation::complete(
            "l",
            Schema::new(vec![a]).unwrap(),
            &cat,
            |row| (row[0] + 1) as f64,
        );
        let r = FunctionalRelation::complete(
            "r",
            Schema::new(vec![b]).unwrap(),
            &cat,
            |row| (row[0] + 1) as f64,
        );
        let sr = SemiringKind::SumProduct;
        let merge = merge_join(&mut ExecContext::new(sr), &l, &r).unwrap();
        assert_eq!(merge.len(), 6);
        assert!(merge.function_eq(&ops::raw::product_join(sr, &l, &r).unwrap()));
    }

    #[test]
    fn sort_group_by_matches_hash_group_by() {
        let (cat, l, _) = fixtures();
        let a = cat.var("a").unwrap();
        for sr in [SemiringKind::SumProduct, SemiringKind::MaxProduct] {
            let hash = ops::raw::group_by(sr, &l, &[a]).unwrap();
            let sorted = sort_group_by(&mut ExecContext::new(sr), &l, &[a]).unwrap();
            assert!(hash.function_eq(&sorted));
        }
        // Scalar aggregation.
        let sr = SemiringKind::SumProduct;
        let hash = ops::raw::group_by(sr, &l, &[]).unwrap();
        let sorted = sort_group_by(&mut ExecContext::new(sr), &l, &[]).unwrap();
        assert!(hash.function_eq(&sorted));
    }

    #[test]
    fn sort_group_by_rejects_foreign_vars() {
        let (_, l, _) = fixtures();
        assert!(matches!(
            sort_group_by(&mut ExecContext::new(SemiringKind::SumProduct), &l, &[VarId(99)]),
            Err(AlgebraError::GroupVarNotInInput(_))
        ));
    }

    #[test]
    fn empty_inputs() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 2).unwrap();
        let empty = FunctionalRelation::new("e", Schema::new(vec![a]).unwrap());
        let mut cx = ExecContext::new(SemiringKind::SumProduct);
        assert_eq!(merge_join(&mut cx, &empty, &empty).unwrap().len(), 0);
        assert_eq!(sort_group_by(&mut cx, &empty, &[a]).unwrap().len(), 0);
    }

    #[test]
    fn sort_ops_record_stats() {
        let (cat, l, r) = fixtures();
        let a = cat.var("a").unwrap();
        let mut cx = ExecContext::new(SemiringKind::SumProduct);
        merge_join(&mut cx, &l, &r).unwrap();
        sort_group_by(&mut cx, &l, &[a]).unwrap();
        assert_eq!(cx.stats().joins, 1);
        assert_eq!(cx.stats().group_bys, 1);
        assert!(cx.stats().rows_processed > 0);
    }
}
