use std::collections::HashMap;
use std::sync::Arc;

use mpf_storage::FunctionalRelation;

/// A source of named base relations for plan execution.
pub trait RelationProvider {
    /// The relation registered under `name`, if any.
    fn relation_of(&self, name: &str) -> Option<&FunctionalRelation>;
}

/// A simple in-memory relation store.
#[derive(Debug, Clone, Default)]
pub struct RelationStore {
    relations: HashMap<String, FunctionalRelation>,
}

impl RelationStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a relation under its own name.
    pub fn insert(&mut self, rel: FunctionalRelation) {
        self.relations.insert(rel.name().to_string(), rel);
    }

    /// Remove a relation by name.
    pub fn remove(&mut self, name: &str) -> Option<FunctionalRelation> {
        self.relations.remove(name)
    }

    /// Whether a relation of this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterate over the stored relations.
    pub fn iter(&self) -> impl Iterator<Item = &FunctionalRelation> {
        self.relations.values()
    }

    /// Names of all stored relations (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of stored relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl RelationProvider for RelationStore {
    fn relation_of(&self, name: &str) -> Option<&FunctionalRelation> {
        self.relations.get(name)
    }
}

impl RelationProvider for HashMap<String, FunctionalRelation> {
    fn relation_of(&self, name: &str) -> Option<&FunctionalRelation> {
        self.get(name)
    }
}

/// A copy-on-write view over a base provider: a small set of patched or
/// synthetic relations shadows the base by name, everything else resolves
/// through untouched.
///
/// This is what makes batch what-if evaluation cheap: a scenario that
/// overrides one relation of a five-relation view carries one patched
/// relation (plus any memoized trunk outputs under synthetic names) instead
/// of a full store clone. Entries are `Arc`-shared so one trunk result can
/// appear in many scenarios' overlays without copying rows.
#[derive(Debug, Clone)]
pub struct Overlay<'a, P: RelationProvider> {
    base: &'a P,
    extra: HashMap<String, Arc<FunctionalRelation>>,
}

impl<'a, P: RelationProvider> Overlay<'a, P> {
    /// An overlay with no shadowed relations: resolves exactly like `base`.
    pub fn new(base: &'a P) -> Self {
        Self {
            base,
            extra: HashMap::new(),
        }
    }

    /// Shadow (or add) a relation under an explicit `name`, regardless of
    /// the relation's own name. Synthetic trunk outputs are installed this
    /// way so the residual plan's generated scan names need no rename pass.
    pub fn insert_as(&mut self, name: impl Into<String>, rel: Arc<FunctionalRelation>) {
        self.extra.insert(name.into(), rel);
    }

    /// Number of shadowed relations.
    pub fn shadowed(&self) -> usize {
        self.extra.len()
    }
}

impl<P: RelationProvider> RelationProvider for Overlay<'_, P> {
    fn relation_of(&self, name: &str) -> Option<&FunctionalRelation> {
        match self.extra.get(name) {
            Some(rel) => Some(rel.as_ref()),
            None => self.base.relation_of(name),
        }
    }
}

impl FromIterator<FunctionalRelation> for RelationStore {
    fn from_iter<T: IntoIterator<Item = FunctionalRelation>>(iter: T) -> Self {
        let mut store = RelationStore::new();
        for rel in iter {
            store.insert(rel);
        }
        store
    }
}
