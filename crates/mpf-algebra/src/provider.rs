use std::collections::HashMap;

use mpf_storage::FunctionalRelation;

/// A source of named base relations for plan execution.
pub trait RelationProvider {
    /// The relation registered under `name`, if any.
    fn relation_of(&self, name: &str) -> Option<&FunctionalRelation>;
}

/// A simple in-memory relation store.
#[derive(Debug, Clone, Default)]
pub struct RelationStore {
    relations: HashMap<String, FunctionalRelation>,
}

impl RelationStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) a relation under its own name.
    pub fn insert(&mut self, rel: FunctionalRelation) {
        self.relations.insert(rel.name().to_string(), rel);
    }

    /// Remove a relation by name.
    pub fn remove(&mut self, name: &str) -> Option<FunctionalRelation> {
        self.relations.remove(name)
    }

    /// Whether a relation of this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterate over the stored relations.
    pub fn iter(&self) -> impl Iterator<Item = &FunctionalRelation> {
        self.relations.values()
    }

    /// Names of all stored relations (unordered).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.relations.keys().map(String::as_str)
    }

    /// Number of stored relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

impl RelationProvider for RelationStore {
    fn relation_of(&self, name: &str) -> Option<&FunctionalRelation> {
        self.relations.get(name)
    }
}

impl RelationProvider for HashMap<String, FunctionalRelation> {
    fn relation_of(&self, name: &str) -> Option<&FunctionalRelation> {
        self.get(name)
    }
}

impl FromIterator<FunctionalRelation> for RelationStore {
    fn from_iter<T: IntoIterator<Item = FunctionalRelation>>(iter: T) -> Self {
        let mut store = RelationStore::new();
        for rel in iter {
            store.insert(rel);
        }
        store
    }
}
