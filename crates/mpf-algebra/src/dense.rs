//! Dense odometer-indexed kernels for complete (or near-complete) factors.
//!
//! The paper's inference workloads run over *complete* relations — one row
//! per point of the schema's domain cross product — where the hash
//! operators pay key extraction and probing for structure the row order
//! already encodes. The kernels here drop the keys entirely:
//!
//! * [`join`] computes the product join as a stride-aligned broadcast
//!   multiply — each output grid index decomposes into the two input
//!   offsets through precomputed strides, advanced incrementally by an
//!   odometer (no division, no hashing, no key allocation per cell);
//! * [`agg`] computes marginalization output-major: each output cell
//!   folds its eliminated-variable subgrid in fixed odometer order, so
//!   the result is bit-identical at any thread count *by construction*
//!   (the same cell always folds the same values in the same order);
//! * [`to_dense`] / [`from_dense`] are the boundary conversions. Absent
//!   cells take the semiring's additive identity, which is what a missing
//!   row denotes under MPF semantics ([`SemiringKind::mul`] annihilates on
//!   the identity), so densification preserves the *function* at any
//!   density. It does not preserve the *support* — a zero-filled grid
//!   materializes identity rows the sparse operators never emit — so the
//!   public operators only run the kernels when the inputs are
//!   support-exact ([`join_support_exact`] / [`agg_support_exact`]) and
//!   the outputs are row-identical to the sparse path, falling back to
//!   the hash operators otherwise.
//!
//! Operators have no catalog, so grids come from
//! [`FunctionalRelation::inferred_domains`] (a pure function of the input
//! data — deterministic across threads); for a variable shared by both
//! join sides the larger inferred domain wins. Every kernel charges the
//! [`crate::ExecBudget`] one `produced` per output cell — identical to
//! the sparse operators on complete inputs — and the conversions charge
//! nothing (the dense factor replaces the sparse operand) but poll
//! cancellation and the deadline. When a grid is infeasible (beyond
//! [`mpf_storage::dense::MAX_DENSE_CELLS`], or the rows do not embed in
//! it), or the inputs are not support-exact, the public operators fall
//! back to the sparse hash implementations, so a planner mis-estimate
//! costs the fast path, never an error.
//!
//! Parallelism splits the *output index range* into contiguous chunks
//! (not hash partitions): workers write disjoint slices of the output
//! array and errors surface in chunk order, so answers, budget trips, and
//! error precedence match the sequential kernel exactly.
//!
//! # Kernel modes
//!
//! Every kernel here is generic over a statically-known semiring
//! ([`mpf_semiring::kernel::SemiringOps`], instantiated for all seven
//! through [`mpf_semiring::for_each_semiring`]), so the inner loops are
//! straight-line per-semiring code with no dispatch branch per cell. On
//! top of that, [`KernelMode`] (the `MPF_KERNEL` knob) picks the loop
//! shape:
//!
//! * [`KernelMode::Scalar`] — one cell at a time, budget guard polled
//!   per cell: the reference shape.
//! * [`KernelMode::Chunked`] (default) — contiguous runs processed in
//!   blocks: elementwise loops (join) write whole runs with one budget
//!   charge per [`KERNEL_BLOCK`] cells, and marginalization folds
//!   contiguous runs through [`mpf_semiring::kernel::LANES`]-wide
//!   accumulators with the fixed reduction tree of
//!   [`mpf_semiring::kernel::reduce_lanes`]. The chunked fold shape is a
//!   pure function of the run length — never of thread count or chunk
//!   scheduling — so chunked results are bit-identical at any
//!   `MPF_THREADS`. Across *modes*, join cells are identical bit for
//!   bit (elementwise either way); marginalization agrees exactly for
//!   the association-insensitive min/max-family semirings and within
//!   floating-point tolerance for `SumProduct`/`LogSumProduct`.
//!
//! # Fused join→marginalize
//!
//! [`join_agg`] contracts a product join directly into the
//! marginalization's output grid — the canonical VE elimination step —
//! without materializing the intermediate join factor: each output cell
//! folds `mul(a, b)` over its eliminated subgrid in the exact order the
//! unfused join-then-agg pipeline would, so the fused result is
//! bit-identical to the unfused dense pipeline under the same kernel
//! mode, while peak memory drops from the union grid to the output
//! grid.

use mpf_semiring::kernel::{fold_run, reduce_lanes, SemiringOps, LANES};
use mpf_semiring::for_each_semiring;
use mpf_storage::dense::{grid_cells, is_odometer_ordered, strides_of};
use mpf_storage::{DenseFactor, FunctionalRelation, Schema, VarId};

use crate::limits::{ExecBudget, OpGuard};
use crate::{ops, AlgebraError, ExecContext, Result};

/// Minimum output cells before the dense kernels fan out to worker
/// threads; below this the spawn cost dominates.
pub const PARALLEL_MIN_CELLS: usize = 1 << 15;

/// Cells per budget charge in the chunked elementwise kernels: large
/// enough that guard traffic vanishes from the profile, small enough
/// that a budget trip still stops an exploding operator within a few
/// thousand cells of its cap (the scalar kernels trip within
/// [`crate::limits::TICK_INTERVAL`]).
pub(crate) const KERNEL_BLOCK: usize = 4096;

/// Inputs at least this large switch to the cache-blocked kernel
/// variants when their axis order conflicts with the output's (the
/// implicit-transpose case); below it everything fits in cache anyway.
const TILE_MIN_CELLS: usize = 1 << 16;

/// Tile edge for the blocked join kernel: 64 f64 cells is one 512-byte
/// run, so a 64×64 tile touches 64 such runs of each array — they all
/// stay resident across the tile and every cache line is used 64 times.
const TILE: u64 = 64;

/// Minimum stride along the output's inner axis before blocking pays;
/// short strides stay within a cache line or two per step.
const TILE_MIN_STRIDE: usize = 64;

/// Whether the dense fast path may be used, resolved per context
/// (planner configs and tests set it explicitly; [`DenseMode::from_env`]
/// is the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DenseMode {
    /// Never use the dense kernels.
    Off,
    /// Plan dense whenever the grids are feasible, skipping the planner's
    /// estimated-density heuristic. The kernels still verify
    /// support-exactness at runtime and fall back to the hash operators
    /// otherwise.
    On,
    /// Plan dense when the estimated density clears the planner's
    /// threshold and the grids are feasible — the cost-based default.
    #[default]
    Auto,
}

impl DenseMode {
    /// Resolve from the `MPF_DENSE` environment variable: `off`/`0`,
    /// `on`/`1`, or `auto`; unset or unrecognized means [`DenseMode::Auto`].
    pub fn from_env() -> DenseMode {
        match std::env::var("MPF_DENSE") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "off" | "0" | "false" => DenseMode::Off,
                "on" | "1" | "true" => DenseMode::On,
                _ => DenseMode::Auto,
            },
            Err(_) => DenseMode::Auto,
        }
    }
}

/// Which loop shape the dense (and aligned-coordinate sparse) kernels
/// run, resolved per context (planner configs and tests set it
/// explicitly; [`KernelMode::from_env`] is the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// One cell at a time, budget guard polled per cell — the reference
    /// shape, kept for parity testing and bisection.
    Scalar,
    /// Fixed-width lane chunking with block-granular budget charges —
    /// the autovectorizing default. Deterministic reduction shape: see
    /// the module docs.
    #[default]
    Chunked,
}

impl KernelMode {
    /// Resolve from the `MPF_KERNEL` environment variable: `scalar` or
    /// `chunked`; unset or unrecognized means [`KernelMode::Chunked`].
    /// (Strict validation — reject rather than default — lives in
    /// [`crate::config::validate_env`]; operators stay lenient so a
    /// typo costs the fast shape, never a query.)
    pub fn from_env() -> KernelMode {
        match std::env::var("MPF_KERNEL") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "scalar" => KernelMode::Scalar,
                _ => KernelMode::Chunked,
            },
            Err(_) => KernelMode::Chunked,
        }
    }

    /// The knob spelling, for trace spans and metrics.
    pub fn name(self) -> &'static str {
        match self {
            KernelMode::Scalar => "scalar",
            KernelMode::Chunked => "chunked",
        }
    }
}

/// The O(1) grid hint: for a relation whose rows are the odometer
/// sequence of some grid — every dense-kernel product, and everything
/// [`FunctionalRelation::complete`] builds — the *last* row is the grid's
/// maximum point, so `last row + 1` is the domain vector, and the row
/// count must equal the grid size. The hint is plausible, not proven:
/// [`DenseFactor::from_relation`]'s verifying fast path confirms it
/// during densification, and any mismatch (shuffled rows, duplicates, a
/// value beyond the hint) fails the conversion, falling back to the
/// sparse operators. A complete relation in non-odometer row order
/// therefore skips the dense path by design — proving completeness
/// without the order would cost the full O(rows × arity) scan this hint
/// exists to avoid.
fn ordered_grid_hint(rel: &FunctionalRelation) -> Option<Vec<u64>> {
    if rel.is_empty() {
        return None;
    }
    // Grid-certified relations (every dense-kernel product, everything
    // `complete` builds) carry their domain vector outright — and reading
    // the last row below would force them to materialize packed keys.
    if let Some(g) = rel.grid_domains() {
        let domains = g.to_vec();
        return (grid_cells(&domains) == Some(rel.len() as u64)).then_some(domains);
    }
    let last = rel.row(rel.len() - 1);
    let domains: Vec<u64> = last.iter().map(|&v| v as u64 + 1).collect();
    (grid_cells(&domains) == Some(rel.len() as u64)).then_some(domains)
}

/// Whether the sides' grids agree on every shared variable (given their
/// domain vectors) — the remaining condition for a support-exact join.
fn shared_domains_agree(
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    ld: &[u64],
    rd: &[u64],
) -> bool {
    l.schema()
        .iter()
        .enumerate()
        .all(|(p, v)| r.schema().position(v).map_or(true, |q| ld[p] == rd[q]))
}

/// Whether `rel` is complete over its inferred grid: exactly one row per
/// point of the cross product of its per-column value ranges. A complete
/// relation densifies with zero fill cells, so the dense kernels touch
/// only real data. (A full-scan property check; the operators themselves
/// gate on the O(1) odometer hint instead.)
pub fn is_complete_on_inferred(rel: &FunctionalRelation) -> bool {
    grid_cells(&rel.inferred_domains()) == Some(rel.len() as u64)
}

/// Whether the dense join is *support-exact* for these inputs: both sides
/// in dense-kernel form (rows are the odometer sequence of their grid, so
/// the side is complete on it), with the grids agreeing on every shared
/// variable. Under these conditions the sparse join's output support is
/// exactly the union grid, so the dense kernel produces a
/// [`FunctionalRelation::function_eq`]-identical result (same rows, not
/// just the same function modulo explicit identity rows). [`join`]
/// enforces this at runtime — the O(1) hint here, the row order during
/// densification — falling back to the hash join otherwise, so a planner
/// mis-estimate costs the fast path, never correctness.
pub fn join_support_exact(l: &FunctionalRelation, r: &FunctionalRelation) -> bool {
    match (ordered_grid_hint(l), ordered_grid_hint(r)) {
        (Some(ld), Some(rd)) => shared_domains_agree(l, r, &ld, &rd),
        _ => false,
    }
}

/// Whether the dense marginalization is *support-exact* for this input:
/// in dense-kernel form (so every output group grid point has input rows,
/// matching the sparse operator's group set) and non-empty (a zero-ary
/// marginal of an empty input is empty on the sparse path, not a single
/// identity cell).
pub fn agg_support_exact(input: &FunctionalRelation) -> bool {
    ordered_grid_hint(input).is_some()
}

/// Whether [`join`] would take the dense path for these inputs under
/// `mode`. `On` and `Auto` agree at runtime — support-exactness is a hard
/// precondition of the kernels — and differ only in how eagerly the
/// *planner* annotates operators from its estimates.
pub fn dense_join_applies(
    mode: DenseMode,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
) -> bool {
    if mode == DenseMode::Off {
        return false;
    }
    let (Some(ld), Some(rd)) = (ordered_grid_hint(l), ordered_grid_hint(r)) else {
        return false;
    };
    if !shared_domains_agree(l, r, &ld, &rd) {
        return false;
    }
    let out_schema = l.schema().union(r.schema());
    grid_cells(&union_domains(l, r, &out_schema, &ld, &rd)).is_some()
}

/// Whether [`agg`] would take the dense path for this input under `mode`.
pub fn dense_agg_applies(mode: DenseMode, input: &FunctionalRelation) -> bool {
    match mode {
        DenseMode::Off => false,
        DenseMode::On | DenseMode::Auto => agg_support_exact(input),
    }
}

/// [`ops::product_join`] dispatched through the context's [`DenseMode`]:
/// the dense kernel when it applies, else the sparse hash join. This is
/// the entry point for callers outside the planner (the inference layer),
/// whose operator calls never pass through `choose_physical`.
pub fn join_auto(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
) -> Result<FunctionalRelation> {
    // [`join`] gates on support-exactness and feasibility itself, so only
    // the mode is decided here — checking `dense_join_applies` first
    // would scan both inputs twice.
    match cx.dense_mode() {
        DenseMode::Off => ops::product_join(cx, l, r),
        DenseMode::On | DenseMode::Auto => join(cx, l, r),
    }
}

/// [`ops::group_by`] dispatched through the context's [`DenseMode`].
pub fn agg_auto(
    cx: &mut ExecContext<'_>,
    input: &FunctionalRelation,
    group_vars: &[VarId],
) -> Result<FunctionalRelation> {
    match cx.dense_mode() {
        DenseMode::Off => ops::group_by(cx, input, group_vars),
        DenseMode::On | DenseMode::Auto => agg(cx, input, group_vars),
    }
}

/// Densify `rel` onto `domains`, filling absent cells with the semiring's
/// additive identity. Charges no budget cells (the factor replaces the
/// sparse operand rather than augmenting it) but polls cancellation and
/// the deadline; `None` when the grid is infeasible or the rows do not
/// embed in it.
pub fn to_dense(
    cx: &mut ExecContext<'_>,
    rel: &FunctionalRelation,
    domains: &[u64],
) -> Result<Option<DenseFactor>> {
    cx.fault("dense::convert")?;
    cx.checkpoint()?;
    let fill = cx.semiring().zero();
    let df = DenseFactor::from_relation(rel, domains, fill);
    if df.is_some() {
        cx.note_dense_convert();
    }
    Ok(df)
}

/// Materialize a dense factor back into a sparse relation (every grid
/// cell, odometer order — the same row order
/// [`FunctionalRelation::complete`] produces).
pub fn from_dense(cx: &mut ExecContext<'_>, df: DenseFactor) -> Result<FunctionalRelation> {
    cx.fault("dense::convert")?;
    cx.checkpoint()?;
    cx.note_dense_convert();
    Ok(df.into_relation())
}

/// A zero-copy dense operand: an odometer-ordered relation's measure
/// column read in place as its grid's value array. On large factors the
/// conversion *copy* costs as much as the kernel itself, so the kernels
/// borrow their inputs and only the output is ever materialized.
struct DenseInput<'a> {
    strides: Vec<u64>,
    values: &'a [f64],
}

/// Borrow `rel` as a dense factor over `domains` without copying: one
/// verifying scan ([`is_odometer_ordered`]) proves the measure column is
/// the grid's value array (and, with it, completeness, uniqueness, and
/// bounds — the support-exactness precondition). Counts as a dense
/// conversion in the context stats: it is one, just O(1) in space.
/// `None` when the rows are not the grid's odometer sequence; the caller
/// then falls back to the sparse operator.
fn dense_input<'a>(
    cx: &mut ExecContext<'_>,
    rel: &'a FunctionalRelation,
    domains: &[u64],
) -> Result<Option<DenseInput<'a>>> {
    cx.fault("dense::convert")?;
    cx.checkpoint()?;
    if !is_odometer_ordered(rel, domains) {
        return Ok(None);
    }
    cx.note_dense_convert();
    Ok(Some(DenseInput {
        strides: strides_of(domains),
        values: rel.measures(),
    }))
}

/// Dense product join: densify both inputs onto the union grid and
/// broadcast-multiply along precomputed strides. Row-identical to
/// [`ops::product_join`] (verified by `tests/dense_parity.rs`); falls
/// back to it when the inputs are not support-exact or the union grid is
/// infeasible.
pub fn join(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
) -> Result<FunctionalRelation> {
    cx.fault("dense::join")?;
    let (Some(ld), Some(rd)) = (ordered_grid_hint(l), ordered_grid_hint(r)) else {
        return ops::product_join(cx, l, r);
    };
    if !shared_domains_agree(l, r, &ld, &rd) {
        return ops::product_join(cx, l, r);
    }
    match join_impl(cx, l, r, &ld, &rd)? {
        Some(out) => {
            let rel = from_dense(cx, out)?;
            cx.record_join_ex(&[l, r], &rel, crate::trace::OpRepr::Dense);
            cx.note_kernel_op(cx.kernel_mode());
            Ok(rel)
        }
        None => ops::product_join(cx, l, r),
    }
}

/// Dense marginalization: each output cell folds its eliminated-variable
/// subgrid in fixed odometer order. Row-identical to [`ops::group_by`];
/// falls back to it when the input is not support-exact or its grid is
/// infeasible.
pub fn agg(
    cx: &mut ExecContext<'_>,
    input: &FunctionalRelation,
    group_vars: &[VarId],
) -> Result<FunctionalRelation> {
    cx.fault("dense::agg")?;
    for &v in group_vars {
        if !input.schema().contains(v) {
            return Err(AlgebraError::GroupVarNotInInput(v));
        }
    }
    let Some(domains) = ordered_grid_hint(input) else {
        return ops::group_by(cx, input, group_vars);
    };
    match agg_impl(cx, input, group_vars, &domains)? {
        Some(out) => {
            let rel = from_dense(cx, out)?;
            cx.record_group_by_ex(&[input], &rel, crate::trace::OpRepr::Dense);
            cx.note_kernel_op(cx.kernel_mode());
            Ok(rel)
        }
        None => ops::group_by(cx, input, group_vars),
    }
}

/// Fused dense join→marginalize: contract the product join of `l` and
/// `r` directly into the marginal's output grid, never materializing
/// the intermediate join factor. Each output cell folds
/// `mul(a, b)` over its eliminated subgrid in join-grid odometer order
/// — exactly the order the unfused dense join-then-agg pipeline folds
/// it under the same [`KernelMode`] — so the result is bit-identical to
/// the unfused dense pipeline, while peak memory drops from the union
/// grid to the output grid. Falls back to the fused hash operator
/// ([`ops::join_group_by`], itself row- and bit-identical to hash
/// join→group-by) when the inputs are not support-exact or the union
/// grid is infeasible.
pub fn join_agg(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    group_vars: &[VarId],
) -> Result<FunctionalRelation> {
    cx.fault("dense::join_agg")?;
    for &v in group_vars {
        if !l.schema().contains(v) && !r.schema().contains(v) {
            return Err(AlgebraError::GroupVarNotInInput(v));
        }
    }
    let (Some(ld), Some(rd)) = (ordered_grid_hint(l), ordered_grid_hint(r)) else {
        return ops::join_group_by(cx, l, r, group_vars);
    };
    if !shared_domains_agree(l, r, &ld, &rd) {
        return ops::join_group_by(cx, l, r, group_vars);
    }
    match join_agg_impl(cx, l, r, group_vars, &ld, &rd)? {
        Some(out) => {
            let rel = from_dense(cx, out)?;
            cx.record_join_agg_ex(&[l, r], &rel, crate::trace::OpRepr::Dense);
            cx.note_kernel_op(cx.kernel_mode());
            Ok(rel)
        }
        None => ops::join_group_by(cx, l, r, group_vars),
    }
}

/// [`join_agg`] dispatched through the context's [`DenseMode`]: the
/// fused dense kernel when it applies, else the fused hash operator.
/// This is the interpreter's entry point for the planner's `JoinAgg`
/// nodes.
pub fn join_agg_auto(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    group_vars: &[VarId],
) -> Result<FunctionalRelation> {
    match cx.dense_mode() {
        DenseMode::Off => ops::join_group_by(cx, l, r, group_vars),
        DenseMode::On | DenseMode::Auto => join_agg(cx, l, r, group_vars),
    }
}

/// Per-variable odometer step for the fused kernel: the variable's
/// domain (in the join grid) and its stride in each input (0 when the
/// input lacks it — the broadcast, exactly as in [`JoinDim`]).
struct FusedDim {
    dom: u64,
    sa: usize,
    sb: usize,
}

fn join_agg_impl(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    group_vars: &[VarId],
    ld: &[u64],
    rd: &[u64],
) -> Result<Option<DenseFactor>> {
    let join_schema = l.schema().union(r.schema());
    let join_domains = union_domains(l, r, &join_schema, ld, rd);
    let Some(join_cells_total) = grid_cells(&join_domains) else {
        return Ok(None);
    };
    let side_domains = |s: &Schema| -> Vec<u64> {
        s.iter()
            .map(|v| join_domains[join_schema.position(v).expect("var in union")])
            .collect()
    };
    let Some(a) = dense_input(cx, l, &side_domains(l.schema()))? else {
        return Ok(None);
    };
    let Some(b) = dense_input(cx, r, &side_domains(r.schema()))? else {
        return Ok(None);
    };

    let out_schema = Schema::new(group_vars.to_vec())?;
    let out_domains: Vec<u64> = group_vars
        .iter()
        .map(|&v| join_domains[join_schema.position(v).expect("validated")])
        .collect();
    let name = format!("γ({}⨝*{})", l.name(), r.name());
    let Some(mut out) = DenseFactor::filled(name, out_schema.clone(), out_domains, 0.0) else {
        return Ok(None);
    };
    let stride_in = |v: VarId, s: &Schema, strides: &[u64]| -> usize {
        s.position(v).ok().map_or(0, |p| strides[p] as usize)
    };
    // Group axes in output-schema order; eliminated axes in join-schema
    // order — the intermediate factor's fold order, which keeps the
    // fused result bit-identical to the unfused dense pipeline.
    let gdims: Vec<FusedDim> = group_vars
        .iter()
        .enumerate()
        .map(|(j, &v)| FusedDim {
            dom: out.domains()[j],
            sa: stride_in(v, l.schema(), &a.strides),
            sb: stride_in(v, r.schema(), &b.strides),
        })
        .collect();
    let edims: Vec<FusedDim> = join_schema
        .iter()
        .enumerate()
        .filter(|(_, v)| !group_vars.contains(v))
        .map(|(p, v)| FusedDim {
            dom: join_domains[p],
            sa: stride_in(v, l.schema(), &a.strides),
            sb: stride_in(v, r.schema(), &b.strides),
        })
        .collect();
    let out_strides = out.strides().to_vec();

    let sr = cx.semiring();
    let mode = cx.kernel_mode();
    let arity = out_schema.arity();
    let threads = cx.threads();
    let budget = cx.budget();
    let total = out.len();
    // The lane-fold gate must mirror the unfused agg's (`selast == 1` on
    // the intermediate grid): the innermost eliminated run is contiguous
    // there exactly when the join grid's innermost axis is eliminated.
    let lane_ok = join_schema
        .iter()
        .last()
        .is_some_and(|v| !group_vars.contains(&v));
    let workers = if join_cells_total >= PARALLEL_MIN_CELLS as u64 && total > 1 {
        threads.max(1)
    } else {
        1
    };
    if workers <= 1 {
        for_each_semiring!(sr, join_agg_cells(
            a.values, b.values, &gdims, &out_strides, &edims, 0, out.values_mut(),
            budget, arity, mode, lane_ok,
        ))?;
    } else {
        // Chunk along output axis 0, as the unfused kernels do: each
        // worker owns a contiguous output slice and every cell's fold
        // runs entirely in one worker, so results are thread-invariant.
        let stride0 = out_strides[0] as usize;
        let workers = workers.min(gdims[0].dom as usize).max(1);
        let chunk_rows = gdims[0].dom.div_ceil(workers as u64);
        let chunk = chunk_rows as usize * stride0;
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = out
                .values_mut()
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, slice)| {
                    let (gdims, edims, out_strides) = (&gdims, &edims, &out_strides);
                    let (av, bv) = (a.values, b.values);
                    scope.spawn(move || {
                        for_each_semiring!(sr, join_agg_cells(
                            av, bv, gdims, out_strides, edims, i * chunk, slice, budget,
                            arity, mode, lane_ok,
                        ))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(AlgebraError::Internal("dense join-agg worker panicked".into()))
                    })
                })
                .collect()
        });
        for r in results {
            r?;
        }
        if let Some(b) = budget {
            b.check_rows(total as u64)?;
            b.checkpoint()?;
        }
    }
    Ok(Some(out))
}

/// Fused contraction kernel over one contiguous output-cell range: the
/// [`agg_cells`] fold with the intermediate's value computed on the fly
/// as `mul(a, b)` through two strided odometers. `lane_ok` marks the
/// layouts whose unfused counterpart would lane-fold (contiguous
/// innermost eliminated runs); [`fold_products`] then reproduces
/// [`fold_run`]'s exact shape over the same value sequence, keeping
/// fused and unfused results bit-identical in both kernel modes.
#[allow(clippy::too_many_arguments)]
fn join_agg_cells<S: SemiringOps>(
    av: &[f64],
    bv: &[f64],
    gdims: &[FusedDim],
    out_strides: &[u64],
    edims: &[FusedDim],
    start: usize,
    out: &mut [f64],
    budget: Option<&ExecBudget>,
    arity: usize,
    mode: KernelMode,
    lane_ok: bool,
) -> Result<()> {
    let mut guard = OpGuard::new(budget, arity);
    let k = gdims.len();
    let mut coords = vec![0u64; k];
    let (mut abase, mut bbase) = (0usize, 0usize);
    let mut rem = start as u64;
    for j in 0..k {
        let c = rem / out_strides[j];
        rem %= out_strides[j];
        coords[j] = c;
        abase += c as usize * gdims[j].sa;
        bbase += c as usize * gdims[j].sb;
    }
    let ecells: u64 = edims.iter().map(|d| d.dom).product();
    let ek = edims.len();
    let (delast, sal, sbl) = if ek == 0 {
        (1u64, 0usize, 0usize)
    } else {
        (edims[ek - 1].dom, edims[ek - 1].sa, edims[ek - 1].sb)
    };
    let eruns = ecells.checked_div(delast).unwrap_or(0);
    let mut ecoords = vec![0u64; ek.saturating_sub(1)];
    let lane = mode == KernelMode::Chunked && lane_ok && ek > 0;
    for slot in out.iter_mut() {
        guard.poll()?;
        let mut acc = if lane {
            fold_products::<S>(av, abase, sal, bv, bbase, sbl, delast as usize)
        } else {
            let mut acc = S::mul(av[abase], bv[bbase]);
            for j in 1..delast as usize {
                acc = S::add(acc, S::mul(av[abase + j * sal], bv[bbase + j * sbl]));
            }
            acc
        };
        let (mut ea, mut eb) = (0usize, 0usize);
        for _ in 1..eruns {
            for j in (0..ek - 1).rev() {
                ecoords[j] += 1;
                ea += edims[j].sa;
                eb += edims[j].sb;
                if ecoords[j] < edims[j].dom {
                    break;
                }
                ecoords[j] = 0;
                ea -= edims[j].sa * edims[j].dom as usize;
                eb -= edims[j].sb * edims[j].dom as usize;
            }
            let (ra, rb) = (abase + ea, bbase + eb);
            if lane {
                acc = S::add(acc, fold_products::<S>(av, ra, sal, bv, rb, sbl, delast as usize));
            } else {
                for j in 0..delast as usize {
                    acc = S::add(acc, S::mul(av[ra + j * sal], bv[rb + j * sbl]));
                }
            }
        }
        for e in ecoords.iter_mut() {
            *e = 0;
        }
        if !S::KIND.is_valid_accumulation(acc) {
            return Err(AlgebraError::NonFiniteMeasure {
                op: "dense::join_agg",
                value: acc,
            });
        }
        *slot = acc;
        guard.produced()?;
        for j in (0..k).rev() {
            coords[j] += 1;
            abase += gdims[j].sa;
            bbase += gdims[j].sb;
            if coords[j] < gdims[j].dom {
                break;
            }
            coords[j] = 0;
            abase -= gdims[j].sa * gdims[j].dom as usize;
            bbase -= gdims[j].sb * gdims[j].dom as usize;
        }
    }
    guard.finish()?;
    Ok(())
}

/// The union grid: for each output variable, the larger of the two
/// sides' inferred domains (a variable on one side only takes that
/// side's). `ld`/`rd` are the sides' precomputed inferred domains.
fn union_domains(
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    out_schema: &Schema,
    ld: &[u64],
    rd: &[u64],
) -> Vec<u64> {
    out_schema
        .iter()
        .map(|v| {
            let from_l = l.schema().position(v).ok().map_or(0, |p| ld[p]);
            let from_r = r.schema().position(v).ok().map_or(0, |p| rd[p]);
            from_l.max(from_r)
        })
        .collect()
}

/// Per-output-variable odometer step for the join kernel: the variable's
/// domain and its stride in each input (0 when the input lacks it, so the
/// input offset simply never moves along that axis — the broadcast).
struct JoinDim {
    dom: u64,
    sa: usize,
    sb: usize,
}

/// Elementwise product of one contiguous output run, specialized per
/// input-stride pattern so the common broadcast shapes ((1,1), (1,0),
/// (0,1)) compile to vector loops. Every branch computes the same
/// values in the same cells — the specialization is for the compiler,
/// not the semantics.
#[inline(always)]
fn write_products<S: SemiringOps>(
    av: &[f64],
    ai: usize,
    sal: usize,
    bv: &[f64],
    bi: usize,
    sbl: usize,
    out: &mut [f64],
) {
    match (sal, sbl) {
        (1, 1) => {
            let (xs, ys) = (&av[ai..ai + out.len()], &bv[bi..bi + out.len()]);
            for (t, slot) in out.iter_mut().enumerate() {
                *slot = S::mul(xs[t], ys[t]);
            }
        }
        (1, 0) => {
            let (xs, y) = (&av[ai..ai + out.len()], bv[bi]);
            for (t, slot) in out.iter_mut().enumerate() {
                *slot = S::mul(xs[t], y);
            }
        }
        (0, 1) => {
            let (x, ys) = (av[ai], &bv[bi..bi + out.len()]);
            for (t, slot) in out.iter_mut().enumerate() {
                *slot = S::mul(x, ys[t]);
            }
        }
        _ => {
            for (t, slot) in out.iter_mut().enumerate() {
                *slot = S::mul(av[ai + t * sal], bv[bi + t * sbl]);
            }
        }
    }
}

/// Chunked fold of `add(mul(a, b))` over one eliminated run of length
/// `n`: [`LANES`] independent accumulators seeded with the additive
/// identity, combined by the fixed [`reduce_lanes`] tree, remainder
/// folded last — the same shape (and therefore the same bits) as
/// [`fold_run`] over the materialized products, which is what the
/// unfused chunked pipeline computes. The shape depends only on `n`.
#[inline(always)]
fn fold_products<S: SemiringOps>(
    av: &[f64],
    ai: usize,
    sal: usize,
    bv: &[f64],
    bi: usize,
    sbl: usize,
    n: usize,
) -> f64 {
    #[inline(always)]
    fn go<S: SemiringOps>(n: usize, f: impl Fn(usize) -> f64) -> f64 {
        let mut lanes = [S::ZERO; LANES];
        let mut t = 0usize;
        while t + LANES <= n {
            for (q, lane) in lanes.iter_mut().enumerate() {
                *lane = S::add(*lane, f(t + q));
            }
            t += LANES;
        }
        let mut acc = reduce_lanes::<S>(lanes);
        while t < n {
            acc = S::add(acc, f(t));
            t += 1;
        }
        acc
    }
    match (sal, sbl) {
        (1, 1) => {
            let (xs, ys) = (&av[ai..ai + n], &bv[bi..bi + n]);
            go::<S>(n, |t| S::mul(xs[t], ys[t]))
        }
        (1, 0) => {
            let (xs, y) = (&av[ai..ai + n], bv[bi]);
            go::<S>(n, |t| S::mul(xs[t], y))
        }
        (0, 1) => {
            let (x, ys) = (av[ai], &bv[bi..bi + n]);
            go::<S>(n, |t| S::mul(x, ys[t]))
        }
        _ => go::<S>(n, |t| S::mul(av[ai + t * sal], bv[bi + t * sbl])),
    }
}

fn join_impl(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    ld: &[u64],
    rd: &[u64],
) -> Result<Option<DenseFactor>> {
    let out_schema = l.schema().union(r.schema());
    let out_domains = union_domains(l, r, &out_schema, ld, rd);
    if grid_cells(&out_domains).is_none() {
        return Ok(None);
    }
    // Each side densifies onto the union grid's domains restricted to its
    // own schema, so shared variables index consistently on both sides.
    let side_domains = |s: &Schema| -> Vec<u64> {
        s.iter()
            .map(|v| out_domains[out_schema.position(v).expect("var in union")])
            .collect()
    };
    let Some(a) = dense_input(cx, l, &side_domains(l.schema()))? else {
        return Ok(None);
    };
    let Some(b) = dense_input(cx, r, &side_domains(r.schema()))? else {
        return Ok(None);
    };

    let name = format!("({}⨝*{})", l.name(), r.name());
    let Some(mut out) = DenseFactor::filled(name, out_schema.clone(), out_domains, 0.0) else {
        return Ok(None);
    };
    let dims: Vec<JoinDim> = out_schema
        .iter()
        .enumerate()
        .map(|(j, v)| JoinDim {
            dom: out.domains()[j],
            sa: l.schema().position(v).ok().map_or(0, |p| a.strides[p] as usize),
            sb: r.schema().position(v).ok().map_or(0, |p| b.strides[p] as usize),
        })
        .collect();
    let out_strides = out.strides().to_vec();

    let sr = cx.semiring();
    let mode = cx.kernel_mode();
    let arity = out_schema.arity();
    let threads = cx.threads();
    let budget = cx.budget();
    let total = out.len();
    let tiled = tile_axes(&dims, a.values.len(), b.values.len());
    let workers = if total >= PARALLEL_MIN_CELLS { threads.max(1) } else { 1 };
    if workers <= 1 {
        match tiled {
            Some((x, y)) => for_each_semiring!(sr, join_cells_tiled(
                a.values, b.values, &dims, &out_strides, x, y,
                0, dims[0].dom, out.values_mut(), budget, arity, mode,
            ))?,
            None => for_each_semiring!(sr, join_cells(
                a.values, b.values, &dims, &out_strides, 0,
                out.values_mut(), budget, arity, mode,
            ))?,
        }
    } else if let Some((x, y)) = tiled {
        // Blocked kernel: chunk along the output's first axis, so each
        // worker's box is still one contiguous output slice.
        let stride0 = out_strides[0] as usize;
        let workers = workers.min(dims[0].dom as usize).max(1);
        let chunk_rows = dims[0].dom.div_ceil(workers as u64);
        let chunk = chunk_rows as usize * stride0;
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = out
                .values_mut()
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, slice)| {
                    let (dims, out_strides) = (&dims, &out_strides);
                    let (av, bv) = (a.values, b.values);
                    let lo0 = i as u64 * chunk_rows;
                    let hi0 = (lo0 + chunk_rows).min(dims[0].dom);
                    scope.spawn(move || {
                        for_each_semiring!(sr, join_cells_tiled(
                            av, bv, dims, out_strides, x, y, lo0, hi0, slice, budget, arity,
                            mode,
                        ))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(AlgebraError::Internal("dense join worker panicked".into()))
                    })
                })
                .collect()
        });
        for r in results {
            r?;
        }
        if let Some(b) = budget {
            b.check_rows(total as u64)?;
            b.checkpoint()?;
        }
    } else {
        let chunk = total.div_ceil(workers);
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = out
                .values_mut()
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, slice)| {
                    let (dims, out_strides) = (&dims, &out_strides);
                    let (av, bv) = (a.values, b.values);
                    scope.spawn(move || {
                        for_each_semiring!(sr, join_cells(
                            av, bv, dims, out_strides, i * chunk, slice, budget, arity, mode,
                        ))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(AlgebraError::Internal("dense join worker panicked".into()))
                    })
                })
                .collect()
        });
        // Chunk order: deterministic error precedence, like the
        // partitioned operators merge in partition order.
        for r in results {
            r?;
        }
        if let Some(b) = budget {
            b.check_rows(total as u64)?;
            b.checkpoint()?;
        }
    }
    Ok(Some(out))
}

/// Detect the implicit-transpose case: a large input whose own innermost
/// axis (`y`, input stride 1) differs from the output's innermost axis
/// (`x`), with a long input stride along `x`. The flat odometer kernel
/// would then take that stride once per cell — with power-of-two grids a
/// cache-set-aliasing, TLB-thrashing worst case — so [`join_cells_tiled`]
/// iterates `x`×`y` tiles instead. `None` means flat iteration is already
/// cache-friendly.
fn tile_axes(dims: &[JoinDim], a_len: usize, b_len: usize) -> Option<(usize, usize)> {
    let k = dims.len();
    if k < 2 {
        return None;
    }
    let x = k - 1;
    let conflicted = |len: usize, stride_at_x: usize, inner: Option<usize>| -> Option<usize> {
        let y = inner?;
        (len >= TILE_MIN_CELLS && y != x && stride_at_x >= TILE_MIN_STRIDE).then_some(y)
    };
    let ya = conflicted(a_len, dims[x].sa, (0..k).find(|&j| dims[j].sa == 1));
    let yb = conflicted(b_len, dims[x].sb, (0..k).find(|&j| dims[j].sb == 1));
    match (ya, yb) {
        (Some(y), None) => Some((x, y)),
        (None, Some(y)) => Some((x, y)),
        // Both sides conflict: block for the larger one.
        (Some(y1), Some(y2)) => Some((x, if a_len >= b_len { y1 } else { y2 })),
        (None, None) => None,
    }
}

/// Cache-blocked join kernel over the box where output axis 0 ranges in
/// `[lo0, hi0)` (the worker's contiguous output slice). Axes `x` and `y`
/// are iterated in [`TILE`]×[`TILE`] tiles; the remaining axes run as an
/// outer odometer. Every cell computes the same value as the flat kernel
/// — only the visit order changes, which the budget (a count) and the
/// output (one write per cell) cannot observe. Chunked mode writes each
/// tile row as one run ([`write_products`]) with a single budget charge;
/// the cell values are identical either way.
#[allow(clippy::too_many_arguments)]
fn join_cells_tiled<S: SemiringOps>(
    av: &[f64],
    bv: &[f64],
    dims: &[JoinDim],
    out_strides: &[u64],
    x: usize,
    y: usize,
    lo0: u64,
    hi0: u64,
    out: &mut [f64],
    budget: Option<&ExecBudget>,
    arity: usize,
    mode: KernelMode,
) -> Result<()> {
    let mut guard = OpGuard::new(budget, arity);
    let k = dims.len();
    let box_base = lo0 as usize * out_strides[0] as usize;
    let macro_axes: Vec<usize> = (0..k).filter(|&j| j != x && j != y).collect();
    let mut mcoords: Vec<u64> = macro_axes
        .iter()
        .map(|&j| if j == 0 { lo0 } else { 0 })
        .collect();
    let (ylo, yhi) = if y == 0 { (lo0, hi0) } else { (0, dims[y].dom) };
    let (xlo, xhi) = if x == 0 { (lo0, hi0) } else { (0, dims[x].dom) };
    let (sax, sbx, sox) = (dims[x].sa, dims[x].sb, out_strides[x] as usize);
    let (say, sby, soy) = (dims[y].sa, dims[y].sb, out_strides[y] as usize);
    loop {
        let mut ma = 0usize;
        let mut mb = 0usize;
        let mut mo = 0usize;
        for (i, &j) in macro_axes.iter().enumerate() {
            ma += mcoords[i] as usize * dims[j].sa;
            mb += mcoords[i] as usize * dims[j].sb;
            mo += mcoords[i] as usize * out_strides[j] as usize;
        }
        let mut y0 = ylo;
        while y0 < yhi {
            let yend = (y0 + TILE).min(yhi);
            let mut x0 = xlo;
            while x0 < xhi {
                let xend = (x0 + TILE).min(xhi);
                for yl in y0..yend {
                    let ra = ma + yl as usize * say + x0 as usize * sax;
                    let rb = mb + yl as usize * sby + x0 as usize * sbx;
                    let ro = mo + yl as usize * soy + x0 as usize * sox - box_base;
                    let n = (xend - x0) as usize;
                    match mode {
                        KernelMode::Scalar => {
                            for xi in 0..n {
                                guard.poll()?;
                                out[ro + xi * sox] = S::mul(av[ra + xi * sax], bv[rb + xi * sbx]);
                                guard.produced()?;
                            }
                        }
                        KernelMode::Chunked => {
                            guard.poll()?;
                            if sox == 1 {
                                write_products::<S>(av, ra, sax, bv, rb, sbx, &mut out[ro..ro + n]);
                            } else {
                                for xi in 0..n {
                                    out[ro + xi * sox] =
                                        S::mul(av[ra + xi * sax], bv[rb + xi * sbx]);
                                }
                            }
                            guard.produced_many(n as u64)?;
                        }
                    }
                }
                x0 = xend;
            }
            y0 = yend;
        }
        // Advance the macro odometer (axis 0 wraps at the box bound).
        let mut done = true;
        for i in (0..macro_axes.len()).rev() {
            let j = macro_axes[i];
            let (lo, hi) = if j == 0 { (lo0, hi0) } else { (0, dims[j].dom) };
            mcoords[i] += 1;
            if mcoords[i] < hi {
                done = false;
                break;
            }
            mcoords[i] = lo;
        }
        if done {
            break;
        }
    }
    guard.finish()?;
    Ok(())
}

/// Join kernel over one contiguous output-cell range: an incremental
/// odometer advances both input offsets per cell (no division in the
/// loop); `start` seeds the coordinates for chunked parallel runs.
/// Chunked mode writes each innermost run in [`KERNEL_BLOCK`]-cell
/// blocks through [`write_products`]; the cell values are identical to
/// the scalar shape (the join is elementwise — there is nothing to
/// reassociate).
#[allow(clippy::too_many_arguments)]
fn join_cells<S: SemiringOps>(
    av: &[f64],
    bv: &[f64],
    dims: &[JoinDim],
    out_strides: &[u64],
    start: usize,
    out: &mut [f64],
    budget: Option<&ExecBudget>,
    arity: usize,
    mode: KernelMode,
) -> Result<()> {
    let mut guard = OpGuard::new(budget, arity);
    let k = dims.len();
    let mut coords = vec![0u64; k];
    let (mut ai, mut bi) = (0usize, 0usize);
    let mut rem = start as u64;
    for j in 0..k {
        let c = rem / out_strides[j];
        rem %= out_strides[j];
        coords[j] = c;
        ai += c as usize * dims[j].sa;
        bi += c as usize * dims[j].sb;
    }
    if k == 0 {
        for slot in out.iter_mut() {
            guard.poll()?;
            *slot = S::mul(av[0], bv[0]);
            guard.produced()?;
        }
        guard.finish()?;
        return Ok(());
    }
    // The innermost axis is hoisted into a tight run (a chunk may start
    // mid-run); the odometer only advances on run boundaries.
    let (dlast, sal, sbl) = (dims[k - 1].dom, dims[k - 1].sa, dims[k - 1].sb);
    let mut idx = 0usize;
    while idx < out.len() {
        let run = ((dlast - coords[k - 1]) as usize).min(out.len() - idx);
        match mode {
            KernelMode::Scalar => {
                for slot in &mut out[idx..idx + run] {
                    guard.poll()?;
                    *slot = S::mul(av[ai], bv[bi]);
                    guard.produced()?;
                    ai += sal;
                    bi += sbl;
                }
            }
            KernelMode::Chunked => {
                let mut done = 0usize;
                while done < run {
                    let n = (run - done).min(KERNEL_BLOCK);
                    guard.poll()?;
                    write_products::<S>(av, ai, sal, bv, bi, sbl, &mut out[idx + done..idx + done + n]);
                    ai += sal * n;
                    bi += sbl * n;
                    guard.produced_many(n as u64)?;
                    done += n;
                }
            }
        }
        idx += run;
        coords[k - 1] += run as u64;
        if coords[k - 1] == dlast {
            coords[k - 1] = 0;
            ai -= sal * dlast as usize;
            bi -= sbl * dlast as usize;
            for j in (0..k - 1).rev() {
                coords[j] += 1;
                ai += dims[j].sa;
                bi += dims[j].sb;
                if coords[j] < dims[j].dom {
                    break;
                }
                coords[j] = 0;
                ai -= dims[j].sa * dims[j].dom as usize;
                bi -= dims[j].sb * dims[j].dom as usize;
            }
        }
    }
    guard.finish()?;
    Ok(())
}

fn agg_impl(
    cx: &mut ExecContext<'_>,
    input: &FunctionalRelation,
    group_vars: &[VarId],
    in_domains: &[u64],
) -> Result<Option<DenseFactor>> {
    if grid_cells(in_domains).is_none() {
        return Ok(None);
    }
    let Some(a) = dense_input(cx, input, in_domains)? else {
        return Ok(None);
    };
    let out_schema = Schema::new(group_vars.to_vec())?;
    let out_domains: Vec<u64> = group_vars
        .iter()
        .map(|&v| in_domains[input.schema().position(v).expect("validated")])
        .collect();
    let name = format!("γ({})", input.name());
    let Some(mut out) = DenseFactor::filled(name, out_schema.clone(), out_domains, 0.0) else {
        return Ok(None);
    };
    // Output axes: domain + input stride per group variable (output
    // schema order). Eliminated axes: domain + input stride for every
    // input variable not grouped on, in input schema order — the fixed
    // fold order that makes the result thread-count-invariant.
    let gdims: Vec<(u64, usize)> = group_vars
        .iter()
        .enumerate()
        .map(|(j, &v)| {
            let p = input.schema().position(v).expect("validated");
            (out.domains()[j], a.strides[p] as usize)
        })
        .collect();
    let edims: Vec<(u64, usize)> = input
        .schema()
        .iter()
        .enumerate()
        .filter(|(_, v)| !group_vars.contains(v))
        .map(|(p, _)| (in_domains[p], a.strides[p] as usize))
        .collect();
    let out_strides = out.strides().to_vec();

    let sr = cx.semiring();
    let mode = cx.kernel_mode();
    let arity = out_schema.arity();
    let threads = cx.threads();
    let budget = cx.budget();
    let total = out.len();
    let in_cells = a.values.len();
    // When the input's stride-1 axis is a *group* axis, the per-cell fold
    // would take the eliminated axes' long strides once per input cell;
    // accumulate input-major instead (identical add order per output
    // cell, sequential access on both arrays).
    let input_major = in_cells >= TILE_MIN_CELLS
        && input
            .schema()
            .iter()
            .last()
            .is_some_and(|v| group_vars.contains(&v));
    let workers = if in_cells >= PARALLEL_MIN_CELLS && total > 1 { threads.max(1) } else { 1 };
    if workers <= 1 {
        if input_major {
            for_each_semiring!(sr, agg_cells_input_major(
                a.values, &gdims, &edims, 0, gdims[0].0, out.values_mut(), budget, arity, mode,
            ))?;
        } else {
            for_each_semiring!(sr, agg_cells(
                a.values, &gdims, &out_strides, &edims, 0, out.values_mut(), budget, arity, mode,
            ))?;
        }
    } else if input_major {
        // Chunk along output axis 0: each worker accumulates its own
        // contiguous output box from the disjoint input columns that map
        // to it.
        let stride0 = out_strides[0] as usize;
        let workers = workers.min(gdims[0].0 as usize).max(1);
        let chunk_rows = gdims[0].0.div_ceil(workers as u64);
        let chunk = chunk_rows as usize * stride0;
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = out
                .values_mut()
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, slice)| {
                    let (gdims, edims) = (&gdims, &edims);
                    let av = a.values;
                    let lo0 = i as u64 * chunk_rows;
                    let hi0 = (lo0 + chunk_rows).min(gdims[0].0);
                    scope.spawn(move || {
                        for_each_semiring!(sr, agg_cells_input_major(
                            av, gdims, edims, lo0, hi0, slice, budget, arity, mode,
                        ))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(AlgebraError::Internal("dense agg worker panicked".into()))
                    })
                })
                .collect()
        });
        for r in results {
            r?;
        }
        if let Some(b) = budget {
            b.check_rows(total as u64)?;
            b.checkpoint()?;
        }
    } else {
        let chunk = total.div_ceil(workers);
        let results: Vec<Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = out
                .values_mut()
                .chunks_mut(chunk)
                .enumerate()
                .map(|(i, slice)| {
                    let (gdims, edims, out_strides) = (&gdims, &edims, &out_strides);
                    let av = a.values;
                    scope.spawn(move || {
                        for_each_semiring!(sr, agg_cells(
                            av, gdims, out_strides, edims, i * chunk, slice, budget, arity, mode,
                        ))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(AlgebraError::Internal("dense agg worker panicked".into()))
                    })
                })
                .collect()
        });
        for r in results {
            r?;
        }
        if let Some(b) = budget {
            b.check_rows(total as u64)?;
            b.checkpoint()?;
        }
    }
    Ok(Some(out))
}

/// Input-major aggregation kernel over the box where output axis 0
/// ranges in `[lo0, hi0)`: one pass over the group grid per eliminated
/// combination, in ascending eliminated-odometer order. Every output
/// cell therefore receives exactly the values the per-cell fold of
/// [`agg_cells`]'s scalar shape would give it, in the same order —
/// bit-identical in *both* kernel modes (the passes are elementwise, so
/// chunking changes the loop structure, never the per-cell add order) —
/// but both arrays are walked along the input's short strides.
/// Validation and budget charges happen once per output cell at the
/// end, like the per-cell kernel's.
#[allow(clippy::too_many_arguments)]
fn agg_cells_input_major<S: SemiringOps>(
    av: &[f64],
    gdims: &[(u64, usize)],
    edims: &[(u64, usize)],
    lo0: u64,
    hi0: u64,
    out: &mut [f64],
    budget: Option<&ExecBudget>,
    arity: usize,
    mode: KernelMode,
) -> Result<()> {
    let mut guard = OpGuard::new(budget, arity);
    let k = gdims.len();
    let ecells: u64 = edims.iter().map(|d| d.0).product();
    let mut ecoords = vec![0u64; edims.len()];
    let mut eoff = 0usize;
    let mut gcoords: Vec<u64> = (0..k).map(|j| if j == 0 { lo0 } else { 0 }).collect();
    let mut goff = lo0 as usize * gdims[0].1;
    let (lo_last, hi_last) = if k == 1 { (lo0, hi0) } else { (0, gdims[k - 1].0) };
    let glast = gdims[k - 1].1;
    for pass in 0..ecells {
        if pass > 0 {
            for j in (0..edims.len()).rev() {
                ecoords[j] += 1;
                eoff += edims[j].1;
                if ecoords[j] < edims[j].0 {
                    break;
                }
                ecoords[j] = 0;
                eoff -= edims[j].1 * edims[j].0 as usize;
            }
        }
        // The group odometer walks the box in output order (so `out` is
        // written sequentially) and wraps back to the box origin.
        match mode {
            KernelMode::Scalar => {
                for slot in out.iter_mut() {
                    guard.poll()?;
                    let v = av[eoff + goff];
                    *slot = if pass == 0 { v } else { S::add(*slot, v) };
                    for j in (0..k).rev() {
                        gcoords[j] += 1;
                        goff += gdims[j].1;
                        let (lo, hi) = if j == 0 { (lo0, hi0) } else { (0, gdims[j].0) };
                        if gcoords[j] < hi {
                            break;
                        }
                        gcoords[j] = lo;
                        goff -= gdims[j].1 * (hi - lo) as usize;
                    }
                }
            }
            KernelMode::Chunked => {
                // Runs along the innermost group axis: contiguous in the
                // output, stride `glast` in the input (1 in the motivating
                // grouped-on-stride-1-axis case, where both sides
                // vectorize).
                let mut s = 0usize;
                while s < out.len() {
                    let run = ((hi_last - gcoords[k - 1]) as usize).min(out.len() - s);
                    guard.poll()?;
                    let src = eoff + goff;
                    let dst = &mut out[s..s + run];
                    if glast == 1 {
                        let xs = &av[src..src + run];
                        if pass == 0 {
                            dst.copy_from_slice(xs);
                        } else {
                            for (t, slot) in dst.iter_mut().enumerate() {
                                *slot = S::add(*slot, xs[t]);
                            }
                        }
                    } else if pass == 0 {
                        for (t, slot) in dst.iter_mut().enumerate() {
                            *slot = av[src + t * glast];
                        }
                    } else {
                        for (t, slot) in dst.iter_mut().enumerate() {
                            *slot = S::add(*slot, av[src + t * glast]);
                        }
                    }
                    s += run;
                    gcoords[k - 1] += run as u64;
                    goff += glast * run;
                    if gcoords[k - 1] == hi_last {
                        gcoords[k - 1] = lo_last;
                        goff -= glast * (hi_last - lo_last) as usize;
                        for j in (0..k - 1).rev() {
                            gcoords[j] += 1;
                            goff += gdims[j].1;
                            let (lo, hi) = if j == 0 { (lo0, hi0) } else { (0, gdims[j].0) };
                            if gcoords[j] < hi {
                                break;
                            }
                            gcoords[j] = lo;
                            goff -= gdims[j].1 * (hi - lo) as usize;
                        }
                    }
                }
            }
        }
    }
    for slot in out.iter() {
        if !S::KIND.is_valid_accumulation(*slot) {
            return Err(AlgebraError::NonFiniteMeasure {
                op: "dense::agg",
                value: *slot,
            });
        }
        guard.produced()?;
    }
    guard.finish()?;
    Ok(())
}

/// Aggregation kernel over one contiguous output-cell range. Each cell
/// folds its eliminated subgrid in input-schema odometer order — in
/// scalar mode, the same left-to-right order the rows of that group
/// appear in a complete relation, so the fold matches the sparse
/// operator's accumulation order exactly. Chunked mode folds each
/// contiguous innermost run (eliminated stride 1) through [`fold_run`]'s
/// lane accumulators instead — a different association whose shape is a
/// pure function of the run length, so results stay bit-identical at any
/// thread count (and exactly equal to scalar for the min/max-family
/// semirings). The accumulator is validated once per cell: an invalid
/// intermediate (overflow to ∞, or ∞ − ∞ = NaN) can only end in an
/// invalid final value in these semirings, so the per-cell check catches
/// everything the sparse per-accumulation check does.
#[allow(clippy::too_many_arguments)]
fn agg_cells<S: SemiringOps>(
    av: &[f64],
    gdims: &[(u64, usize)],
    out_strides: &[u64],
    edims: &[(u64, usize)],
    start: usize,
    out: &mut [f64],
    budget: Option<&ExecBudget>,
    arity: usize,
    mode: KernelMode,
) -> Result<()> {
    let mut guard = OpGuard::new(budget, arity);
    let k = gdims.len();
    let mut coords = vec![0u64; k];
    let mut base = 0usize;
    let mut rem = start as u64;
    for j in 0..k {
        let c = rem / out_strides[j];
        rem %= out_strides[j];
        coords[j] = c;
        base += c as usize * gdims[j].1;
    }
    let ecells: u64 = edims.iter().map(|d| d.0).product();
    // The innermost eliminated axis folds as a tight run; the outer
    // eliminated odometer advances once per run. Same accumulation
    // sequence as a flat per-cell odometer, just without its bookkeeping.
    let ek = edims.len();
    let (delast, selast) = if ek == 0 { (1u64, 0usize) } else { edims[ek - 1] };
    let eruns = ecells.checked_div(delast).unwrap_or(0);
    let mut ecoords = vec![0u64; ek.saturating_sub(1)];
    // Lane-fold only contiguous runs: strided gathers defeat the point,
    // and matching the unfused/fused shapes requires the gate to be a
    // property of the data layout, not the run values.
    let lane = mode == KernelMode::Chunked && selast == 1;
    for slot in out.iter_mut() {
        guard.poll()?;
        // Seed with the first value (the sparse operator pushes a group's
        // first row unaggregated), then fold the rest in odometer order.
        let mut acc = if lane {
            fold_run::<S>(&av[base..base + delast as usize])
        } else {
            let mut acc = av[base];
            for j in 1..delast as usize {
                acc = S::add(acc, av[base + j * selast]);
            }
            acc
        };
        let mut ebase = 0usize;
        for _ in 1..eruns {
            for j in (0..ek - 1).rev() {
                ecoords[j] += 1;
                ebase += edims[j].1;
                if ecoords[j] < edims[j].0 {
                    break;
                }
                ecoords[j] = 0;
                ebase -= edims[j].1 * edims[j].0 as usize;
            }
            let rbase = base + ebase;
            if lane {
                acc = S::add(acc, fold_run::<S>(&av[rbase..rbase + delast as usize]));
            } else {
                for j in 0..delast as usize {
                    acc = S::add(acc, av[rbase + j * selast]);
                }
            }
        }
        for e in ecoords.iter_mut() {
            *e = 0;
        }
        if !S::KIND.is_valid_accumulation(acc) {
            return Err(AlgebraError::NonFiniteMeasure {
                op: "dense::agg",
                value: acc,
            });
        }
        *slot = acc;
        guard.produced()?;
        for j in (0..k).rev() {
            coords[j] += 1;
            base += gdims[j].1;
            if coords[j] < gdims[j].0 {
                break;
            }
            coords[j] = 0;
            base -= gdims[j].1 * gdims[j].0 as usize;
        }
    }
    guard.finish()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_semiring::SemiringKind;
    use mpf_storage::{Catalog, Schema};

    fn fixtures() -> (Catalog, FunctionalRelation, FunctionalRelation) {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 6).unwrap();
        let b = cat.add_var("b", 5).unwrap();
        let c = cat.add_var("c", 4).unwrap();
        let l = FunctionalRelation::complete(
            "l",
            Schema::new(vec![a, b]).unwrap(),
            &cat,
            |row| (row[0] * 3 + row[1] + 1) as f64,
        );
        let r = FunctionalRelation::complete(
            "r",
            Schema::new(vec![b, c]).unwrap(),
            &cat,
            |row| (row[0] + 5 * row[1] + 1) as f64,
        );
        (cat, l, r)
    }

    #[test]
    fn dense_join_matches_hash_join() {
        let (_, l, r) = fixtures();
        for sr in SemiringKind::ALL {
            let want = ops::raw::product_join(sr, &l, &r).unwrap();
            let got = join(&mut ExecContext::new(sr), &l, &r).unwrap();
            assert!(want.function_eq(&got), "{sr:?}");
        }
    }

    #[test]
    fn dense_agg_matches_group_by() {
        let (cat, l, _) = fixtures();
        let a = cat.var("a").unwrap();
        let b = cat.var("b").unwrap();
        for sr in SemiringKind::ALL {
            for gv in [vec![a], vec![b, a], vec![]] {
                let want = ops::raw::group_by(sr, &l, &gv).unwrap();
                let got = agg(&mut ExecContext::new(sr), &l, &gv).unwrap();
                assert!(want.function_eq(&got), "{sr:?} {gv:?}");
            }
        }
    }

    #[test]
    fn dense_results_bit_identical_across_threads() {
        let (cat, l, r) = fixtures();
        let b = cat.var("b").unwrap();
        let sr = SemiringKind::LogSumProduct;
        let j1 = join(&mut ExecContext::new(sr).with_threads(1), &l, &r).unwrap();
        let j4 = join(&mut ExecContext::new(sr).with_threads(4), &l, &r).unwrap();
        assert_eq!(j1, j4, "dense join output is odometer-ordered either way");
        let g1 = agg(&mut ExecContext::new(sr).with_threads(1), &j1, &[b]).unwrap();
        let g4 = agg(&mut ExecContext::new(sr).with_threads(4), &j4, &[b]).unwrap();
        assert_eq!(g1, g4);
    }

    #[test]
    fn tiled_join_matches_hash_join() {
        // The (c, b) output is ~69k cells (≥ TILE_MIN_CELLS) while `r`
        // is stored (b, c) — the implicit-transpose case the blocked
        // kernel exists for — and neither domain is a multiple of TILE,
        // so edge tiles clip on both axes.
        let mut cat = Catalog::new();
        let b = cat.add_var("b", 230).unwrap();
        let c = cat.add_var("c", 300).unwrap();
        let l = FunctionalRelation::complete("l", Schema::new(vec![c]).unwrap(), &cat, |row| {
            1.0 + row[0] as f64
        });
        let r =
            FunctionalRelation::complete("r", Schema::new(vec![b, c]).unwrap(), &cat, |row| {
                ((row[0] * 7 + row[1] * 3) % 11) as f64 + 0.25
            });
        let sr = SemiringKind::SumProduct;
        let want = ops::raw::product_join(sr, &l, &r).unwrap();
        let got1 = join(&mut ExecContext::new(sr).with_threads(1), &l, &r).unwrap();
        let got4 = join(&mut ExecContext::new(sr).with_threads(4), &l, &r).unwrap();
        assert!(want.function_eq(&got1));
        assert_eq!(got1, got4, "blocked kernel is chunk-invariant");
    }

    #[test]
    fn input_major_agg_matches_hash_group_by() {
        // Grouping on the input's stride-1 axis at ≥ TILE_MIN_CELLS
        // engages the input-major accumulation variant; the sparse
        // operator folds each group's rows in the same (first-axis
        // ascending) order, so results match bit for bit.
        let mut cat = Catalog::new();
        let e = cat.add_var("e", 260).unwrap();
        let g = cat.add_var("g", 300).unwrap();
        let input =
            FunctionalRelation::complete("t", Schema::new(vec![e, g]).unwrap(), &cat, |row| {
                0.5 + ((row[0] * 13 + row[1] * 5) % 17) as f64
            });
        let sr = SemiringKind::LogSumProduct;
        let want = ops::raw::group_by(sr, &input, &[g]).unwrap();
        let got1 = agg(&mut ExecContext::new(sr).with_threads(1), &input, &[g]).unwrap();
        let got4 = agg(&mut ExecContext::new(sr).with_threads(4), &input, &[g]).unwrap();
        assert!(want.function_eq(&got1));
        assert_eq!(got1, got4, "input-major kernel is chunk-invariant");
    }

    #[test]
    fn incomplete_inputs_fall_back_to_sparse() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 3).unwrap();
        let b = cat.add_var("b", 3).unwrap();
        let l = FunctionalRelation::from_rows(
            "l",
            Schema::new(vec![a]).unwrap(),
            [(vec![0], 2.0), (vec![2], 3.0)],
        )
        .unwrap();
        let r = FunctionalRelation::from_rows(
            "r",
            Schema::new(vec![a, b]).unwrap(),
            [(vec![0, 1], 5.0), (vec![2, 2], 7.0), (vec![1, 0], 11.0)],
        )
        .unwrap();
        for sr in SemiringKind::ALL {
            let want = ops::raw::product_join(sr, &l, &r).unwrap();
            // An incomplete input never borrows as a dense operand — the
            // kernel itself refuses (its support would differ from the
            // hash join's) and reports infeasibility to the caller...
            let kernel = join_impl(
                &mut ExecContext::new(sr),
                &l,
                &r,
                &l.inferred_domains(),
                &r.inferred_domains(),
            )
            .unwrap();
            assert!(kernel.is_none(), "{sr:?} kernel refuses incomplete input");
            // ...so the public operator takes the hash path instead.
            assert!(!join_support_exact(&l, &r));
            let mut cx = ExecContext::new(sr);
            let got = join(&mut cx, &l, &r).unwrap();
            assert_eq!(cx.stats().dense_joins, 0, "{sr:?} fell back");
            assert!(want.function_eq(&got), "{sr:?} row-identical");
            let wg = ops::raw::group_by(sr, &want, &[b]).unwrap();
            let mut gx = ExecContext::new(sr);
            let gg = agg(&mut gx, &got, &[b]).unwrap();
            assert_eq!(gx.stats().dense_group_bys, 0, "{sr:?} agg fell back");
            assert!(wg.function_eq(&gg), "{sr:?} agg");
        }
    }

    #[test]
    fn auto_dispatch_gates_on_completeness() {
        let (_, l, r) = fixtures();
        assert!(is_complete_on_inferred(&l));
        assert!(dense_join_applies(DenseMode::Auto, &l, &r));
        assert!(!dense_join_applies(DenseMode::Off, &l, &r));
        let mut sparse = FunctionalRelation::new("s", l.schema().clone());
        sparse.push_row(&[5, 4], 1.0).unwrap();
        assert!(!is_complete_on_inferred(&sparse));
        assert!(!dense_join_applies(DenseMode::Auto, &sparse, &r));
        // Support-exactness is a hard precondition: even On refuses
        // incomplete inputs at runtime (the modes differ at the planner).
        assert!(!dense_join_applies(DenseMode::On, &sparse, &r));
        assert!(dense_agg_applies(DenseMode::Auto, &l));
        assert!(!dense_agg_applies(DenseMode::Auto, &sparse));
        // Complete sides whose shared-variable ranges disagree would
        // zero-fill output cells the hash join never emits — refused too.
        let (cat, _, _) = fixtures();
        let b = cat.var("b").unwrap();
        let c = cat.var("c").unwrap();
        let narrow = FunctionalRelation::from_rows(
            "n",
            Schema::new(vec![b, c]).unwrap(),
            (0..6).map(|i| (vec![i / 2, i % 2], 1.0 + i as f64)),
        )
        .unwrap();
        assert!(is_complete_on_inferred(&narrow));
        assert!(!join_support_exact(&l, &narrow));
        assert!(!dense_join_applies(DenseMode::On, &l, &narrow));
    }

    #[test]
    fn infeasible_grid_falls_back_to_sparse() {
        // Two wide relations whose union grid exceeds MAX_DENSE_CELLS:
        // the dense operator silently runs the hash join instead.
        let mut cat = Catalog::new();
        let x = cat.add_var("x", 1 << 13).unwrap();
        let y = cat.add_var("y", 1 << 13).unwrap();
        let mut l = FunctionalRelation::new("l", Schema::new(vec![x]).unwrap());
        l.push_row(&[(1 << 13) - 1], 2.0).unwrap();
        let mut r = FunctionalRelation::new("r", Schema::new(vec![y]).unwrap());
        r.push_row(&[(1 << 13) - 1], 3.0).unwrap();
        let sr = SemiringKind::SumProduct;
        assert!(!dense_join_applies(DenseMode::On, &l, &r));
        // The internal kernel itself refuses the grid (support-exactness
        // aside): 2^13 × 2^13 cells exceeds MAX_DENSE_CELLS.
        let (ld, rd) = (l.inferred_domains(), r.inferred_domains());
        assert!(join_impl(&mut ExecContext::new(sr), &l, &r, &ld, &rd).unwrap().is_none());
        let mut cx = ExecContext::new(sr);
        let out = join(&mut cx, &l, &r).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(cx.stats().joins, 1);
        assert_eq!(cx.stats().dense_joins, 0, "fell back to the hash join");
    }

    #[test]
    fn dense_ops_account_like_sparse_and_mark_dense() {
        let (cat, l, r) = fixtures();
        let b = cat.var("b").unwrap();
        let sr = SemiringKind::SumProduct;
        let mut cx = ExecContext::new(sr);
        let j = join(&mut cx, &l, &r).unwrap();
        agg(&mut cx, &j, &[b]).unwrap();
        let stats = cx.stats();
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.dense_joins, 1);
        assert_eq!(stats.group_bys, 1);
        assert_eq!(stats.dense_group_bys, 1);
        // join: 2 input conversions + 1 output; agg: 1 input + 1 output.
        assert_eq!(stats.dense_converts, 5);
        // Sparse runs count the same rows processed.
        let mut sx = ExecContext::new(sr);
        let js = ops::product_join(&mut sx, &l, &r).unwrap();
        ops::group_by(&mut sx, &js, &[b]).unwrap();
        assert_eq!(stats.rows_processed, sx.stats().rows_processed);
    }

    #[test]
    fn dense_budget_trips_like_sparse() {
        let (_, l, r) = fixtures();
        let sr = SemiringKind::SumProduct;
        let limits = crate::ExecLimits::none().with_max_output_rows(10);
        let err = join(&mut ExecContext::with_limits(sr, limits.clone()), &l, &r).unwrap_err();
        let sparse_err =
            ops::product_join(&mut ExecContext::with_limits(sr, limits), &l, &r).unwrap_err();
        assert_eq!(err, sparse_err);
    }

    #[test]
    fn mode_from_env_strings() {
        // Only exercises the parser (no env mutation: tests run in
        // parallel and the context carries the mode explicitly).
        assert_eq!(DenseMode::default(), DenseMode::Auto);
    }
}
