//! Memory-bounded and parallel operator variants.
//!
//! The paper's setting is explicitly disk-resident: "the functional
//! relations that define the local distributions are so large that they
//! are disk-resident" (Section 4). A classic hash join whose build side
//! exceeds the workspace must spill; the standard answer is the **Grace
//! hash join** — hash-partition both inputs on the shared variables, then
//! join partition-wise so each build partition fits. [`grace_join`]
//! implements it (function-equal to [`crate::ops::product_join`], verified
//! by property tests), and the physical planner selects it when the build
//! side exceeds the memory budget.
//!
//! The same partitioning makes the operators embarrassingly parallel —
//! rows with different key hashes never interact — so [`parallel_join`]
//! and [`parallel_group_by`] run the partitions on scoped threads
//! (`std::thread::scope`). Results are deterministic: each output row's measure is
//! computed entirely within one partition, so no cross-thread reduction
//! order is involved.
//!
//! All variants take an [`ExecContext`]; worker threads run the raw
//! per-partition kernels and the budget is charged for the concatenated
//! output (each logical operator charges its output exactly once), so
//! accounting matches the single-threaded hash operators.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use mpf_semiring::SemiringKind;
use mpf_storage::{FunctionalRelation, Key, VarId};

use crate::limits::{ExecBudget, OpGuard};
use crate::ops;
use crate::{AlgebraError, ExecContext, Result};

fn partition_of(key: &Key, partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Split a relation into `partitions` buckets by the hash of the key
/// columns at `positions`.
fn partition(
    rel: &FunctionalRelation,
    positions: &[usize],
    partitions: usize,
) -> Result<Vec<FunctionalRelation>> {
    let mut out: Vec<FunctionalRelation> = (0..partitions)
        .map(|i| FunctionalRelation::new(format!("{}#{i}", rel.name()), rel.schema().clone()))
        .collect();
    for (row, m) in rel.rows() {
        let p = partition_of(&Key::extract(row, positions), partitions);
        out[p].push_row(row, m)?;
    }
    Ok(out)
}

/// Grace (partitioned) hash product join: both inputs are hash-partitioned
/// on the shared variables and each partition pair is joined independently
/// with the in-memory hash join.
///
/// With `partitions = 1` this degenerates to the plain hash join. A real
/// system would write partitions to disk between the phases; here the
/// partitioning pass is executed (costing the same row traffic) and the
/// page IO shows up in the executor's counters.
pub fn grace_join(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    partitions: usize,
) -> Result<FunctionalRelation> {
    cx.fault("grace_join")?;
    let partitions = partitions.max(1);
    let shared = l.schema().intersect(r.schema());
    if shared.is_empty() || partitions == 1 {
        // Cross products cannot be key-partitioned; fall back.
        return ops::product_join(cx, l, r);
    }
    let out = grace_join_impl(cx.semiring(), l, r, partitions, cx.budget())?;
    cx.record_join(&[l, r], &out);
    Ok(out)
}

fn grace_join_impl(
    sr: SemiringKind,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    partitions: usize,
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    let shared = l.schema().intersect(r.schema());
    let l_pos = l.schema().positions(shared.vars())?;
    let r_pos = r.schema().positions(shared.vars())?;
    let l_parts = partition(l, &l_pos, partitions)?;
    let r_parts = partition(r, &r_pos, partitions)?;

    let out_schema = l.schema().union(r.schema());
    let mut guard = OpGuard::new(budget, out_schema.arity());
    let mut out = FunctionalRelation::new(
        format!("({}⋈g{})", l.name(), r.name()),
        out_schema.clone(),
    );
    for (lp, rp) in l_parts.iter().zip(&r_parts) {
        let joined = ops::product_join_impl(sr, lp, rp, None)?;
        // Column order of the partition join matches `l ∪ r` because the
        // partitions preserve the original schemas.
        debug_assert_eq!(joined.schema(), &out_schema);
        for (row, m) in joined.rows() {
            out.push_row(row, m)?;
            guard.produced()?;
        }
    }
    guard.finish()?;
    Ok(out)
}

/// Parallel product join: Grace partitioning with each partition pair
/// joined on its own scoped thread.
pub fn parallel_join(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    threads: usize,
) -> Result<FunctionalRelation> {
    cx.fault("parallel_join")?;
    let threads = threads.max(1);
    let shared = l.schema().intersect(r.schema());
    if shared.is_empty() || threads == 1 {
        return ops::product_join(cx, l, r);
    }
    let out = parallel_join_impl(cx.semiring(), l, r, threads, cx.budget())?;
    cx.record_join(&[l, r], &out);
    Ok(out)
}

fn parallel_join_impl(
    sr: SemiringKind,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    threads: usize,
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    let shared = l.schema().intersect(r.schema());
    let l_pos = l.schema().positions(shared.vars())?;
    let r_pos = r.schema().positions(shared.vars())?;
    let l_parts = partition(l, &l_pos, threads)?;
    let r_parts = partition(r, &r_pos, threads)?;

    let results: Vec<Result<FunctionalRelation>> = std::thread::scope(|scope| {
        let handles: Vec<_> = l_parts
            .iter()
            .zip(&r_parts)
            .map(|(lp, rp)| scope.spawn(move || ops::product_join_impl(sr, lp, rp, None)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(AlgebraError::Internal(
                        "partition join thread panicked".into(),
                    ))
                })
            })
            .collect()
    });

    let out_schema = l.schema().union(r.schema());
    let mut guard = OpGuard::new(budget, out_schema.arity());
    let mut out = FunctionalRelation::new(
        format!("({}⋈p{})", l.name(), r.name()),
        out_schema,
    );
    for part in results {
        let part = part?;
        for (row, m) in part.rows() {
            out.push_row(row, m)?;
            guard.produced()?;
        }
    }
    guard.finish()?;
    Ok(out)
}

/// Parallel marginalization: partition by the hash of the grouping values
/// and aggregate each partition on its own thread. Rows of one group land
/// in one partition, so per-group fold order is untouched.
pub fn parallel_group_by(
    cx: &mut ExecContext<'_>,
    input: &FunctionalRelation,
    group_vars: &[VarId],
    threads: usize,
) -> Result<FunctionalRelation> {
    cx.fault("parallel_group_by")?;
    for &v in group_vars {
        if !input.schema().contains(v) {
            return Err(AlgebraError::GroupVarNotInInput(v));
        }
    }
    let threads = threads.max(1);
    if threads == 1 || group_vars.is_empty() {
        return ops::group_by(cx, input, group_vars);
    }
    let out = parallel_group_by_impl(cx.semiring(), input, group_vars, threads, cx.budget())?;
    cx.record_group_by(&[input], &out);
    Ok(out)
}

fn parallel_group_by_impl(
    sr: SemiringKind,
    input: &FunctionalRelation,
    group_vars: &[VarId],
    threads: usize,
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    let positions = input.schema().positions(group_vars)?;
    let parts = partition(input, &positions, threads)?;

    let results: Vec<Result<FunctionalRelation>> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .iter()
            .map(|p| scope.spawn(move || ops::group_by_impl(sr, p, group_vars, None)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(AlgebraError::Internal(
                        "partition group-by thread panicked".into(),
                    ))
                })
            })
            .collect()
    });

    let mut guard = OpGuard::new(budget, group_vars.len());
    let mut out = FunctionalRelation::new(
        format!("γp({})", input.name()),
        mpf_storage::Schema::new(group_vars.to_vec())?,
    );
    for part in results {
        let part = part?;
        for (row, m) in part.rows() {
            out.push_row(row, m)?;
            guard.produced()?;
        }
    }
    guard.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_storage::{Catalog, Schema};

    fn fixtures() -> (Catalog, FunctionalRelation, FunctionalRelation) {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 8).unwrap();
        let b = cat.add_var("b", 8).unwrap();
        let c = cat.add_var("c", 8).unwrap();
        let l = FunctionalRelation::complete(
            "l",
            Schema::new(vec![a, b]).unwrap(),
            &cat,
            |row| (row[0] * 3 + row[1] + 1) as f64,
        );
        let r = FunctionalRelation::complete(
            "r",
            Schema::new(vec![b, c]).unwrap(),
            &cat,
            |row| (row[0] + 5 * row[1] + 1) as f64,
        );
        (cat, l, r)
    }

    #[test]
    fn grace_join_matches_hash_join() {
        let (_, l, r) = fixtures();
        let sr = SemiringKind::SumProduct;
        let want = ops::raw::product_join(sr, &l, &r).unwrap();
        for partitions in [1, 2, 3, 8, 64] {
            let got = grace_join(&mut ExecContext::new(sr), &l, &r, partitions).unwrap();
            assert!(want.function_eq(&got), "{partitions} partitions");
        }
    }

    #[test]
    fn grace_join_cross_product_falls_back() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 3).unwrap();
        let d = cat.add_var("d", 3).unwrap();
        let l = FunctionalRelation::complete(
            "l",
            Schema::new(vec![a]).unwrap(),
            &cat,
            |row| (row[0] + 1) as f64,
        );
        let r = FunctionalRelation::complete(
            "r",
            Schema::new(vec![d]).unwrap(),
            &cat,
            |row| (row[0] + 2) as f64,
        );
        let sr = SemiringKind::SumProduct;
        let want = ops::raw::product_join(sr, &l, &r).unwrap();
        assert!(want.function_eq(&grace_join(&mut ExecContext::new(sr), &l, &r, 4).unwrap()));
    }

    #[test]
    fn parallel_join_matches_hash_join() {
        let (_, l, r) = fixtures();
        for sr in [SemiringKind::SumProduct, SemiringKind::MinSum] {
            let want = ops::raw::product_join(sr, &l, &r).unwrap();
            for threads in [1, 2, 4] {
                let got = parallel_join(&mut ExecContext::new(sr), &l, &r, threads).unwrap();
                assert!(want.function_eq(&got), "{threads} threads");
            }
        }
    }

    #[test]
    fn parallel_group_by_matches_serial() {
        let (cat, l, _) = fixtures();
        let a = cat.var("a").unwrap();
        for sr in [SemiringKind::SumProduct, SemiringKind::MaxProduct] {
            let want = ops::raw::group_by(sr, &l, &[a]).unwrap();
            for threads in [1, 2, 4] {
                let got =
                    parallel_group_by(&mut ExecContext::new(sr), &l, &[a], threads).unwrap();
                assert!(want.function_eq(&got), "{threads} threads");
            }
        }
        // Scalar group-by goes through the serial path.
        let total =
            parallel_group_by(&mut ExecContext::new(SemiringKind::SumProduct), &l, &[], 4)
                .unwrap();
        assert_eq!(total.len(), 1);
    }

    #[test]
    fn parallel_results_are_deterministic() {
        let (cat, l, r) = fixtures();
        let sr = SemiringKind::SumProduct;
        let mut cx = ExecContext::new(sr);
        let first = parallel_join(&mut cx, &l, &r, 4).unwrap().canonicalized();
        for _ in 0..3 {
            let again = parallel_join(&mut cx, &l, &r, 4).unwrap().canonicalized();
            assert_eq!(first, again);
        }
        let a = cat.var("a").unwrap();
        let g1 = parallel_group_by(&mut cx, &l, &[a], 4).unwrap().canonicalized();
        let g2 = parallel_group_by(&mut cx, &l, &[a], 4).unwrap().canonicalized();
        assert_eq!(g1, g2);
    }

    #[test]
    fn partitioned_ops_count_as_one_operator() {
        let (cat, l, r) = fixtures();
        let a = cat.var("a").unwrap();
        let mut cx = ExecContext::new(SemiringKind::SumProduct);
        grace_join(&mut cx, &l, &r, 4).unwrap();
        parallel_group_by(&mut cx, &l, &[a], 4).unwrap();
        assert_eq!(cx.stats().joins, 1);
        assert_eq!(cx.stats().group_bys, 1);
    }
}
