//! Memory-bounded and parallel operator variants.
//!
//! The paper's setting is explicitly disk-resident: "the functional
//! relations that define the local distributions are so large that they
//! are disk-resident" (Section 4). A classic hash join whose build side
//! exceeds the workspace must spill; the standard answer is the **Grace
//! hash join** — hash-partition both inputs on the shared variables, then
//! join partition-wise so each build partition fits. [`grace_join`]
//! implements it (function-equal to [`crate::ops::product_join`], verified
//! by property tests), and the physical planner selects it when the build
//! side exceeds the memory budget.
//!
//! The same partitioning makes the operators embarrassingly parallel —
//! rows with different key hashes never interact — so [`parallel_join`]
//! and [`parallel_group_by`] run the partitions on a pool of scoped
//! worker threads (`std::thread::scope`), in the intra-operator
//! partitioned-parallelism tradition of Volcano's exchange operator and
//! Gamma. The **partition count is decoupled from the worker count**:
//! partitions are sized so each build partition's hash table stays
//! cache-resident ([`parallel_partitions`]), and each worker consumes a
//! contiguous chunk of partitions. On a machine with few cores the
//! cache-residency effect alone makes the partitioned operators beat the
//! monolithic hash operators; on a many-core machine the chunks run
//! concurrently on top of that.
//!
//! Results are deterministic and bit-identical to the sequential
//! operators' (up to row order, which no relation-level equality observes):
//! each output row's measure is computed entirely within one partition —
//! a join row is one multiplication, and all rows of a group hash to the
//! same partition where they are folded in input order — so no
//! cross-thread reduction order is involved, and partition outputs are
//! merged in partition order.
//!
//! All variants take an [`ExecContext`]. Worker threads charge the
//! *shared* [`ExecBudget`] (the cell counter is atomic) and poll
//! cancellation/deadline between partitions and inside the per-partition
//! kernels, so budget trips and cancellations surface from workers as the
//! same typed errors as in sequential execution; the whole-operator
//! output-row cap is enforced on the merged total, matching the
//! single-threaded operators.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use mpf_semiring::SemiringKind;
use mpf_storage::{FunctionalRelation, Key, VarId};

use crate::limits::{ExecBudget, OpGuard};
use crate::ops;
use crate::{AlgebraError, ExecContext, Result};

/// Per-partition target size for the parallel operators: small enough
/// that a partition's build rows plus its hash table stay cache-resident.
/// Measured on the paper's large sparse joins, partition counts in this
/// regime beat the monolithic hash join by 2–3× even single-threaded.
pub const PARTITION_TARGET_BYTES: u64 = 256 * 1024;

/// Cap on parallel-operator partition counts (empty partitions are cheap
/// but not free).
pub const MAX_PARTITIONS: usize = 512;

/// Cap on Grace partition counts derived from the workspace.
pub const MAX_GRACE_PARTITIONS: usize = 1024;

/// Grace partition count for a build side of `build_rows` rows of
/// `row_bytes` bytes each, such that each partition fits a workspace of
/// `workspace_bytes`, clamped to `[2, MAX_GRACE_PARTITIONS]`.
pub fn grace_partitions(build_rows: usize, row_bytes: u64, workspace_bytes: u64) -> usize {
    let bytes = build_rows as u64 * row_bytes;
    (bytes.div_ceil(workspace_bytes.max(1)) as usize).clamp(2, MAX_GRACE_PARTITIONS)
}

/// Partition count for the parallel operators: enough partitions that
/// each holds at most [`PARTITION_TARGET_BYTES`] of build rows (cache
/// residency), at least one per worker, rounded up to a multiple of
/// `threads` so worker chunks are even, and capped at
/// [`MAX_PARTITIONS`].
pub fn parallel_partitions(build_rows: usize, row_bytes: u64, threads: usize) -> usize {
    let threads = threads.max(1);
    let bytes = build_rows as u64 * row_bytes;
    let by_cache = bytes.div_ceil(PARTITION_TARGET_BYTES).max(1) as usize;
    let p = by_cache.clamp(threads.min(MAX_PARTITIONS), MAX_PARTITIONS);
    (p.div_ceil(threads) * threads).min(MAX_PARTITIONS.max(threads))
}

fn partition_of(key: &Key, partitions: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % partitions as u64) as usize
}

/// Split a relation into `partitions` buckets by the hash of the key
/// columns at `positions`. Rows come from an already-validated relation
/// with the same schema, so the buckets use the unchecked append.
fn partition(
    rel: &FunctionalRelation,
    positions: &[usize],
    partitions: usize,
) -> Vec<FunctionalRelation> {
    let mut out: Vec<FunctionalRelation> = (0..partitions)
        .map(|i| FunctionalRelation::new(format!("{}#{i}", rel.name()), rel.schema().clone()))
        .collect();
    for (row, m) in rel.rows() {
        let p = partition_of(&Key::extract(row, positions), partitions);
        out[p].push_row_unchecked(row, m);
    }
    out
}

/// Grace (partitioned) hash product join: both inputs are hash-partitioned
/// on the shared variables and each partition pair is joined independently
/// with the in-memory hash join.
///
/// With `partitions = 1` this degenerates to the plain hash join. A real
/// system would write partitions to disk between the phases; here the
/// partitioning pass is executed (costing the same row traffic) and the
/// page IO shows up in the executor's counters.
pub fn grace_join(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    partitions: usize,
) -> Result<FunctionalRelation> {
    cx.fault("grace_join")?;
    let partitions = partitions.max(1);
    let shared = l.schema().intersect(r.schema());
    if shared.is_empty() || partitions == 1 {
        // Cross products cannot be key-partitioned; fall back.
        return ops::product_join(cx, l, r);
    }
    let out = grace_join_impl(cx.semiring(), l, r, partitions, cx.budget())?;
    cx.record_join(&[l, r], &out);
    Ok(out)
}

fn grace_join_impl(
    sr: SemiringKind,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    partitions: usize,
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    let shared = l.schema().intersect(r.schema());
    let l_pos = l.schema().positions(shared.vars())?;
    let r_pos = r.schema().positions(shared.vars())?;
    let l_parts = partition(l, &l_pos, partitions);
    let r_parts = partition(r, &r_pos, partitions);

    let out_schema = l.schema().union(r.schema());
    let mut guard = OpGuard::new(budget, out_schema.arity());
    let mut out = FunctionalRelation::new(
        format!("({}⋈g{})", l.name(), r.name()),
        out_schema.clone(),
    );
    for (lp, rp) in l_parts.iter().zip(&r_parts) {
        let joined = ops::product_join_impl(sr, lp, rp, None)?;
        // Column order of the partition join matches `l ∪ r` because the
        // partitions preserve the original schemas.
        debug_assert_eq!(joined.schema(), &out_schema);
        for (row, m) in joined.rows() {
            out.push_row_unchecked(row, m);
            guard.produced()?;
        }
    }
    guard.finish()?;
    Ok(out)
}

/// Parallel product join with an automatically derived partition count
/// ([`parallel_partitions`] of the build side).
pub fn parallel_join(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    threads: usize,
) -> Result<FunctionalRelation> {
    let build_rows = l.len().min(r.len());
    let row_bytes = l.row_bytes().max(r.row_bytes());
    let partitions = parallel_partitions(build_rows, row_bytes, threads);
    parallel_join_parts(cx, l, r, threads, partitions)
}

/// Parallel product join: Grace partitioning into `partitions`
/// cache-sized buckets, with `threads` scoped workers each joining a
/// contiguous chunk of partition pairs. With one partition (or no shared
/// variables) this falls back to the plain hash join. The worker count
/// affects only how partitions are chunked, never the output: rows merge
/// in partition order, so the result is bit-identical at every thread
/// count — one worker simply processes all partitions itself.
pub fn parallel_join_parts(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    threads: usize,
    partitions: usize,
) -> Result<FunctionalRelation> {
    cx.fault("parallel_join")?;
    let threads = threads.max(1);
    let partitions = partitions.clamp(1, MAX_PARTITIONS.max(threads));
    let shared = l.schema().intersect(r.schema());
    if shared.is_empty() || partitions == 1 {
        return ops::product_join(cx, l, r);
    }
    let out = parallel_join_impl(cx.semiring(), l, r, threads, partitions, cx.budget())?;
    cx.record_join(&[l, r], &out);
    Ok(out)
}

fn parallel_join_impl(
    sr: SemiringKind,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    threads: usize,
    partitions: usize,
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    let shared = l.schema().intersect(r.schema());
    let l_pos = l.schema().positions(shared.vars())?;
    let r_pos = r.schema().positions(shared.vars())?;
    let l_parts = partition(l, &l_pos, partitions);
    let r_parts = partition(r, &r_pos, partitions);

    let workers = threads.min(partitions).max(1);
    let chunk = partitions.div_ceil(workers);
    let results: Vec<Result<Vec<FunctionalRelation>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = l_parts
            .chunks(chunk)
            .zip(r_parts.chunks(chunk))
            .map(|(ls, rs)| {
                scope.spawn(move || -> Result<Vec<FunctionalRelation>> {
                    let mut outs = Vec::with_capacity(ls.len());
                    for (lp, rp) in ls.iter().zip(rs) {
                        if let Some(b) = budget {
                            b.checkpoint()?;
                        }
                        outs.push(ops::product_join_impl(sr, lp, rp, budget)?);
                    }
                    Ok(outs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(AlgebraError::Internal(
                        "partition join worker panicked".into(),
                    ))
                })
            })
            .collect()
    });

    let out_schema = l.schema().union(r.schema());
    let mut out = FunctionalRelation::new(
        format!("({}⋈p{})", l.name(), r.name()),
        out_schema.clone(),
    );
    // Merge in partition order: deterministic output, deterministic error
    // precedence (the first failing partition in partition order wins).
    for chunk_result in results {
        for part in chunk_result? {
            debug_assert_eq!(part.schema(), &out_schema);
            for (row, m) in part.rows() {
                out.push_row_unchecked(row, m);
            }
        }
    }
    // Workers charged the output cells partition-locally against the
    // shared budget; the whole-operator row cap is enforced here on the
    // merged total, matching the sequential operator.
    if let Some(b) = budget {
        b.check_rows(out.len() as u64)?;
        b.checkpoint()?;
    }
    Ok(out)
}

/// Parallel marginalization with an automatically derived partition
/// count ([`parallel_partitions`] of the input).
pub fn parallel_group_by(
    cx: &mut ExecContext<'_>,
    input: &FunctionalRelation,
    group_vars: &[VarId],
    threads: usize,
) -> Result<FunctionalRelation> {
    let partitions = parallel_partitions(input.len(), input.row_bytes(), threads);
    parallel_group_by_parts(cx, input, group_vars, threads, partitions)
}

/// Parallel marginalization: partition by the hash of the grouping values
/// into `partitions` buckets and aggregate chunks of buckets on `threads`
/// scoped workers. Rows of one group land in one partition, so per-group
/// fold order is exactly the sequential operator's.
pub fn parallel_group_by_parts(
    cx: &mut ExecContext<'_>,
    input: &FunctionalRelation,
    group_vars: &[VarId],
    threads: usize,
    partitions: usize,
) -> Result<FunctionalRelation> {
    cx.fault("parallel_group_by")?;
    for &v in group_vars {
        if !input.schema().contains(v) {
            return Err(AlgebraError::GroupVarNotInInput(v));
        }
    }
    let threads = threads.max(1);
    let partitions = partitions.clamp(1, MAX_PARTITIONS.max(threads));
    if partitions == 1 || group_vars.is_empty() {
        return ops::group_by(cx, input, group_vars);
    }
    let out = parallel_group_by_impl(
        cx.semiring(),
        input,
        group_vars,
        threads,
        partitions,
        cx.budget(),
    )?;
    cx.record_group_by(&[input], &out);
    Ok(out)
}

fn parallel_group_by_impl(
    sr: SemiringKind,
    input: &FunctionalRelation,
    group_vars: &[VarId],
    threads: usize,
    partitions: usize,
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    let positions = input.schema().positions(group_vars)?;
    let parts = partition(input, &positions, partitions);

    let workers = threads.min(partitions).max(1);
    let chunk = partitions.div_ceil(workers);
    let results: Vec<Result<Vec<FunctionalRelation>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = parts
            .chunks(chunk)
            .map(|ps| {
                scope.spawn(move || -> Result<Vec<FunctionalRelation>> {
                    let mut outs = Vec::with_capacity(ps.len());
                    for p in ps {
                        if let Some(b) = budget {
                            b.checkpoint()?;
                        }
                        outs.push(ops::group_by_impl(sr, p, group_vars, budget)?);
                    }
                    Ok(outs)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or_else(|_| {
                    Err(AlgebraError::Internal(
                        "partition group-by worker panicked".into(),
                    ))
                })
            })
            .collect()
    });

    let out_schema = mpf_storage::Schema::new(group_vars.to_vec())?;
    let mut out = FunctionalRelation::new(format!("γp({})", input.name()), out_schema.clone());
    for chunk_result in results {
        for part in chunk_result? {
            debug_assert_eq!(part.schema(), &out_schema);
            for (row, m) in part.rows() {
                out.push_row_unchecked(row, m);
            }
        }
    }
    if let Some(b) = budget {
        b.check_rows(out.len() as u64)?;
        b.checkpoint()?;
    }
    Ok(out)
}

/// Compatibility wrappers with uncontexted signatures for this crate's
/// tests and property-test oracles, mirroring [`crate::ops::raw`]. Calls
/// from other crates are rejected by CI (the raw-ops boundary lint also
/// greps for `partitioned::raw::`), so the parallel entry points cannot
/// be reached without threading an [`ExecContext`].
pub mod raw {
    use super::*;

    /// Uncontexted [`super::grace_join`] (unlimited, stats discarded).
    pub fn grace_join(
        sr: SemiringKind,
        l: &FunctionalRelation,
        r: &FunctionalRelation,
        partitions: usize,
    ) -> Result<FunctionalRelation> {
        super::grace_join(&mut ExecContext::new(sr), l, r, partitions)
    }

    /// Uncontexted [`super::parallel_join`] (unlimited, stats discarded).
    pub fn parallel_join(
        sr: SemiringKind,
        l: &FunctionalRelation,
        r: &FunctionalRelation,
        threads: usize,
    ) -> Result<FunctionalRelation> {
        super::parallel_join(&mut ExecContext::new(sr), l, r, threads)
    }

    /// Uncontexted [`super::parallel_group_by`] (unlimited, stats
    /// discarded).
    pub fn parallel_group_by(
        sr: SemiringKind,
        input: &FunctionalRelation,
        group_vars: &[VarId],
        threads: usize,
    ) -> Result<FunctionalRelation> {
        super::parallel_group_by(&mut ExecContext::new(sr), input, group_vars, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_storage::{Catalog, Schema};

    fn fixtures() -> (Catalog, FunctionalRelation, FunctionalRelation) {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 8).unwrap();
        let b = cat.add_var("b", 8).unwrap();
        let c = cat.add_var("c", 8).unwrap();
        let l = FunctionalRelation::complete(
            "l",
            Schema::new(vec![a, b]).unwrap(),
            &cat,
            |row| (row[0] * 3 + row[1] + 1) as f64,
        );
        let r = FunctionalRelation::complete(
            "r",
            Schema::new(vec![b, c]).unwrap(),
            &cat,
            |row| (row[0] + 5 * row[1] + 1) as f64,
        );
        (cat, l, r)
    }

    #[test]
    fn grace_join_matches_hash_join() {
        let (_, l, r) = fixtures();
        let sr = SemiringKind::SumProduct;
        let want = ops::raw::product_join(sr, &l, &r).unwrap();
        for partitions in [1, 2, 3, 8, 64] {
            let got = raw::grace_join(sr, &l, &r, partitions).unwrap();
            assert!(want.function_eq(&got), "{partitions} partitions");
        }
    }

    #[test]
    fn grace_join_cross_product_falls_back() {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 3).unwrap();
        let d = cat.add_var("d", 3).unwrap();
        let l = FunctionalRelation::complete(
            "l",
            Schema::new(vec![a]).unwrap(),
            &cat,
            |row| (row[0] + 1) as f64,
        );
        let r = FunctionalRelation::complete(
            "r",
            Schema::new(vec![d]).unwrap(),
            &cat,
            |row| (row[0] + 2) as f64,
        );
        let sr = SemiringKind::SumProduct;
        let want = ops::raw::product_join(sr, &l, &r).unwrap();
        assert!(want.function_eq(&raw::grace_join(sr, &l, &r, 4).unwrap()));
    }

    #[test]
    fn parallel_join_matches_hash_join() {
        let (_, l, r) = fixtures();
        for sr in [SemiringKind::SumProduct, SemiringKind::MinSum] {
            let want = ops::raw::product_join(sr, &l, &r).unwrap();
            for threads in [1, 2, 4] {
                let got = raw::parallel_join(sr, &l, &r, threads).unwrap();
                assert!(want.function_eq(&got), "{threads} threads");
            }
        }
    }

    #[test]
    fn explicit_partition_counts_match_too() {
        let (_, l, r) = fixtures();
        let sr = SemiringKind::SumProduct;
        let want = ops::raw::product_join(sr, &l, &r).unwrap();
        for (threads, partitions) in [(2, 2), (2, 16), (3, 7), (4, 64), (8, 512)] {
            let got = parallel_join_parts(&mut ExecContext::new(sr), &l, &r, threads, partitions)
                .unwrap();
            assert!(want.function_eq(&got), "{threads} threads, {partitions} partitions");
        }
    }

    #[test]
    fn parallel_group_by_matches_serial() {
        let (cat, l, _) = fixtures();
        let a = cat.var("a").unwrap();
        for sr in [SemiringKind::SumProduct, SemiringKind::MaxProduct] {
            let want = ops::raw::group_by(sr, &l, &[a]).unwrap();
            for threads in [1, 2, 4] {
                let got = raw::parallel_group_by(sr, &l, &[a], threads).unwrap();
                assert!(want.function_eq(&got), "{threads} threads");
            }
        }
        // Scalar group-by goes through the serial path.
        let total = raw::parallel_group_by(SemiringKind::SumProduct, &l, &[], 4).unwrap();
        assert_eq!(total.len(), 1);
    }

    #[test]
    fn parallel_results_are_deterministic() {
        let (cat, l, r) = fixtures();
        let sr = SemiringKind::SumProduct;
        let mut cx = ExecContext::new(sr);
        let first = parallel_join(&mut cx, &l, &r, 4).unwrap().canonicalized();
        for _ in 0..3 {
            let again = parallel_join(&mut cx, &l, &r, 4).unwrap().canonicalized();
            assert_eq!(first, again);
        }
        let a = cat.var("a").unwrap();
        let g1 = parallel_group_by(&mut cx, &l, &[a], 4).unwrap().canonicalized();
        let g2 = parallel_group_by(&mut cx, &l, &[a], 4).unwrap().canonicalized();
        assert_eq!(g1, g2);
    }

    #[test]
    fn partitioned_ops_count_as_one_operator() {
        let (cat, l, r) = fixtures();
        let a = cat.var("a").unwrap();
        let mut cx = ExecContext::new(SemiringKind::SumProduct);
        grace_join(&mut cx, &l, &r, 4).unwrap();
        parallel_group_by(&mut cx, &l, &[a], 4).unwrap();
        assert_eq!(cx.stats().joins, 1);
        assert_eq!(cx.stats().group_bys, 1);
    }

    #[test]
    fn partition_count_derivations() {
        // Grace: build bytes over workspace, clamped to at least 2.
        assert_eq!(grace_partitions(10, 16, 1 << 20), 2);
        assert_eq!(grace_partitions(1_000_000, 16, 1 << 20), 16);
        assert_eq!(grace_partitions(usize::MAX / 16, 16, 1), MAX_GRACE_PARTITIONS);

        // Parallel: cache-sized, a multiple of the worker count, capped.
        for threads in [1usize, 2, 3, 4, 8] {
            for rows in [0usize, 100, 10_000, 2_000_000] {
                let p = parallel_partitions(rows, 16, threads);
                assert!(p >= 1 && p <= MAX_PARTITIONS.max(threads), "p = {p}");
                assert_eq!(p % threads, 0, "{rows} rows, {threads} threads");
            }
        }
        // 2M rows × 16 B = 32 MiB → cache sizing dominates and lands in
        // the measured sweet spot (well above the thread count).
        assert!(parallel_partitions(2_000_000, 16, 4) >= 64);
    }
}
