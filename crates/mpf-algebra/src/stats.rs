/// Deterministic work counters accumulated during plan execution.
///
/// Wall-clock timings on a laptop are noisy; the experiment harnesses
/// therefore report both elapsed time and these counters, which are exact
/// functions of the plan and data. `rows_processed` is the executor
/// analogue of the paper's operation-count cost metric, and `pages_io` is
/// the simulated disk traffic of a system whose operands are page-resident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows read from base relations.
    pub rows_scanned: u64,
    /// Total rows entering + leaving every operator (work proxy).
    pub rows_processed: u64,
    /// Largest intermediate relation materialized.
    pub max_intermediate_rows: u64,
    /// Simulated page IO: pages of every operator input and output.
    pub pages_io: u64,
    /// Number of product-join operators executed.
    pub joins: u64,
    /// Number of group-by operators executed.
    pub group_bys: u64,
    /// Number of selection operators executed.
    pub selects: u64,
    /// Joins that ran on the dense odometer kernel (also counted in
    /// `joins`).
    pub dense_joins: u64,
    /// Group-bys that ran on the dense odometer kernel (also counted in
    /// `group_bys`).
    pub dense_group_bys: u64,
    /// Dense↔rows boundary conversions performed.
    pub dense_converts: u64,
    /// Joins that ran on the sparse-tensor sorted-merge kernel (also
    /// counted in `joins`).
    pub sparse_joins: u64,
    /// Group-bys that ran on the sparse coordinate-collapse kernel (also
    /// counted in `group_bys`).
    pub sparse_group_bys: u64,
    /// Sparse↔rows boundary conversions performed.
    pub sparse_converts: u64,
    /// Shared-trunk subtrees evaluated once for a scenario batch.
    pub trunk_builds: u64,
    /// Scenario frontiers that reused a memoized trunk subtree instead of
    /// recomputing it.
    pub trunk_hits: u64,
    /// Fused join→marginalize operators executed (each also counted in
    /// both `joins` and `group_bys`, so totals reconcile with an unfused
    /// plan).
    pub fused_join_aggs: u64,
    /// Kernel dispatches that ran the lane-chunked inner loops.
    pub kernel_chunked_ops: u64,
    /// Kernel dispatches that ran the scalar reference inner loops.
    pub kernel_scalar_ops: u64,
}

impl ExecStats {
    /// Merge counters from another execution (e.g. across workload queries).
    pub fn merge(&mut self, other: &ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.rows_processed += other.rows_processed;
        self.max_intermediate_rows = self.max_intermediate_rows.max(other.max_intermediate_rows);
        self.pages_io += other.pages_io;
        self.joins += other.joins;
        self.group_bys += other.group_bys;
        self.selects += other.selects;
        self.dense_joins += other.dense_joins;
        self.dense_group_bys += other.dense_group_bys;
        self.dense_converts += other.dense_converts;
        self.sparse_joins += other.sparse_joins;
        self.sparse_group_bys += other.sparse_group_bys;
        self.sparse_converts += other.sparse_converts;
        self.trunk_builds += other.trunk_builds;
        self.trunk_hits += other.trunk_hits;
        self.fused_join_aggs += other.fused_join_aggs;
        self.kernel_chunked_ops += other.kernel_chunked_ops;
        self.kernel_scalar_ops += other.kernel_scalar_ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates() {
        let mut a = ExecStats {
            rows_scanned: 10,
            rows_processed: 100,
            max_intermediate_rows: 50,
            pages_io: 5,
            joins: 1,
            group_bys: 1,
            selects: 0,
            dense_joins: 1,
            dense_group_bys: 0,
            dense_converts: 3,
            sparse_joins: 1,
            sparse_group_bys: 0,
            sparse_converts: 2,
            trunk_builds: 1,
            trunk_hits: 4,
            fused_join_aggs: 1,
            kernel_chunked_ops: 3,
            kernel_scalar_ops: 0,
        };
        let b = ExecStats {
            rows_scanned: 1,
            rows_processed: 2,
            max_intermediate_rows: 80,
            pages_io: 1,
            joins: 0,
            group_bys: 2,
            selects: 1,
            dense_joins: 0,
            dense_group_bys: 1,
            dense_converts: 2,
            sparse_joins: 0,
            sparse_group_bys: 2,
            sparse_converts: 1,
            trunk_builds: 2,
            trunk_hits: 10,
            fused_join_aggs: 2,
            kernel_chunked_ops: 1,
            kernel_scalar_ops: 2,
        };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 11);
        assert_eq!(a.rows_processed, 102);
        assert_eq!(a.max_intermediate_rows, 80);
        assert_eq!(a.joins, 1);
        assert_eq!(a.group_bys, 3);
        assert_eq!(a.selects, 1);
        assert_eq!(a.dense_joins, 1);
        assert_eq!(a.dense_group_bys, 1);
        assert_eq!(a.dense_converts, 5);
        assert_eq!(a.sparse_joins, 1);
        assert_eq!(a.sparse_group_bys, 2);
        assert_eq!(a.sparse_converts, 3);
        assert_eq!(a.trunk_builds, 3);
        assert_eq!(a.trunk_hits, 14);
        assert_eq!(a.fused_join_aggs, 3);
        assert_eq!(a.kernel_chunked_ops, 4);
        assert_eq!(a.kernel_scalar_ops, 2);
    }
}
