//! Sparse-tensor operators for the mid-density regime.
//!
//! Between the row-major hash operators (pay key extraction and probing
//! per row, win at very low density) and the dense odometer kernels
//! (touch every grid cell, win only near completeness) sits a wide band —
//! roughly 1%–50% occupancy — where neither representation is right.
//! The operators here run on [`SparseFactor`]s: present cells only, as
//! linearized odometer coordinates sorted ascending with a parallel
//! columnar measure vector.
//!
//! * [`join`] relinearizes both sides to a `[shared vars, own vars]` axis
//!   order, so rows joining on the shared variables form contiguous runs
//!   of equal coordinate *prefix* (`key / own_cells`); a two-pointer
//!   sorted merge pairs the runs and emits each output coordinate as
//!   `a_key * b_own_cells + b_own_index` — ascending by construction, so
//!   the output needs no sort. No hash table, no per-row key allocation.
//! * [`agg`] relinearizes to `[group vars, eliminated vars]` order and
//!   collapses runs of equal `key / elim_cells` in one pass, folding the
//!   measure column with the semiring's additive operation.
//!
//! Both kernels are monomorphized per semiring through
//! [`mpf_semiring::for_each_semiring`]: the inner loops see statically
//! known [`SemiringOps`] rather than a `match` per cell, so the simple
//! semirings compile to vectorizable straight-line code.
//!
//! Like the dense module, infeasibility is a fallback, never an error:
//! when the coordinate space overflows
//! [`mpf_storage::layout::MAX_SPARSE_COORD_CELLS`], a value falls outside
//! its inferred domain, or a side holds duplicate argument tuples (the
//! data is not functional — the hash operators define the semantics
//! then), the public operators run the hash implementations instead.
//! Unlike the dense kernels there is no support-exactness precondition:
//! the sparse join emits exactly the matching pairs and the sparse
//! marginalization collapses exactly the present coordinates, so the
//! output *rows* equal the hash operators' at any density (modulo row
//! and column order, which [`FunctionalRelation::function_eq`] ignores).
//!
//! The [`Factor`]-carrying entry points ([`join_factor`],
//! [`agg_factor`], [`materialize`]) let the inference layer chain
//! operators in sparse representation without materializing rows between
//! steps; conversions poll cancellation/deadline and count in
//! [`crate::ExecStats::sparse_converts`].

use std::borrow::Cow;

use mpf_semiring::{for_each_semiring, kernel::SemiringOps};
use mpf_storage::layout::grid_cells_wide;
use mpf_storage::sparse::{Factor, SparseFactor};
use mpf_storage::{FunctionalRelation, Schema, Value, VarId};

use crate::dense::{self, KernelMode, KERNEL_BLOCK};
use crate::limits::{ExecBudget, OpGuard};
use crate::trace::{OpRepr, SpanKind};
use crate::{ops, AlgebraError, ExecContext, Result};

/// Minimum estimated input density before [`join_auto`]/[`agg_auto`]
/// pick the sparse kernels under [`ReprMode::Auto`]; below it the hash
/// operators' per-present-row costs beat the sort/merge constant factor.
pub const SPARSE_MIN_DENSITY: f64 = 0.01;

/// Whether the sparse-tensor operators may be dispatched to, resolved
/// per context (planner configs and tests set it explicitly;
/// [`ReprMode::from_env`] is the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReprMode {
    /// Never use the sparse kernels.
    Off,
    /// Use the sparse kernels whenever the coordinate space is feasible,
    /// skipping the density heuristic. Infeasible inputs still fall back
    /// to the hash operators.
    Sparse,
    /// Use the sparse kernels when the estimated density clears
    /// [`SPARSE_MIN_DENSITY`] (and the dense path does not apply) — the
    /// cost-based default.
    #[default]
    Auto,
}

impl ReprMode {
    /// Resolve from the `MPF_REPR` environment variable: `off`/`0`,
    /// `sparse`/`on`/`1`, or `auto`; unset or unrecognized means
    /// [`ReprMode::Auto`].
    pub fn from_env() -> ReprMode {
        match std::env::var("MPF_REPR") {
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "off" | "0" | "false" => ReprMode::Off,
                "sparse" | "on" | "1" | "true" => ReprMode::Sparse,
                _ => ReprMode::Auto,
            },
            Err(_) => ReprMode::Auto,
        }
    }
}

/// A borrowed operand in either non-dense representation. The kernels
/// only need schema, cardinality, per-variable domains, and a way to
/// emit `(permuted key, measure)` columns — both forms provide them
/// without materializing the other.
enum SideRef<'a> {
    Rows(&'a FunctionalRelation),
    Sparse(&'a SparseFactor),
}

impl<'a> SideRef<'a> {
    fn schema(&self) -> &Schema {
        match self {
            SideRef::Rows(r) => r.schema(),
            SideRef::Sparse(s) => s.schema(),
        }
    }

    fn len(&self) -> usize {
        match self {
            SideRef::Rows(r) => r.len(),
            SideRef::Sparse(s) => s.len(),
        }
    }

    /// Per-variable domain sizes in schema order: stored for a sparse
    /// factor, inferred (per-column max + 1) for a relation.
    fn domains(&self) -> Vec<u64> {
        match self {
            SideRef::Rows(r) => r.inferred_domains(),
            SideRef::Sparse(s) => s.domains().to_vec(),
        }
    }

    /// Linearize every row under a permuted axis order given by
    /// per-position multipliers, validating values against
    /// `doms_by_pos`. Returns keys (unsorted) parallel to the side's
    /// measure column, or `None` when a value falls outside its domain.
    fn permuted_keys(&self, mult: &[u64], doms_by_pos: &[u64]) -> Option<Vec<u64>> {
        let arity = self.schema().arity();
        let mut keys = Vec::with_capacity(self.len());
        let mut row_buf = vec![0 as Value; arity];
        match self {
            SideRef::Rows(rel) => {
                let vals = rel.values_col();
                for i in 0..rel.len() {
                    let row = &vals[i * arity..(i + 1) * arity];
                    keys.push(permute_row(row, mult, doms_by_pos)?);
                }
            }
            SideRef::Sparse(sp) => {
                for &coord in sp.coords() {
                    mpf_storage::layout::delinearize(coord, sp.strides(), &mut row_buf);
                    keys.push(permute_row(&row_buf, mult, doms_by_pos)?);
                }
            }
        }
        Some(keys)
    }

    fn measures(&self) -> &'a [f64] {
        match self {
            SideRef::Rows(r) => r.measures(),
            SideRef::Sparse(s) => s.values(),
        }
    }
}

/// Linearize one row under permuted-axis multipliers; `None` when a
/// value escapes its (possibly widened) domain.
#[inline]
fn permute_row(row: &[Value], mult: &[u64], doms_by_pos: &[u64]) -> Option<u64> {
    let mut key = 0u64;
    for (p, &v) in row.iter().enumerate() {
        if (v as u64) >= doms_by_pos[p] {
            return None;
        }
        key += v as u64 * mult[p];
    }
    Some(key)
}

/// Per-position multipliers realizing a permuted axis order: `axes` is
/// `(position in the side schema, domain)` in the *target* axis order;
/// the returned vector maps each schema position to its stride in the
/// permuted grid.
fn permuted_multipliers(arity: usize, axes: &[(usize, u64)]) -> Vec<u64> {
    let doms: Vec<u64> = axes.iter().map(|a| a.1).collect();
    let strides = mpf_storage::layout::strides_of(&doms);
    let mut mult = vec![0u64; arity];
    for (k, &(p, _)) in axes.iter().enumerate() {
        mult[p] = strides[k];
    }
    mult
}

/// Sort a keyed measure column by key (skipping the sort when the keys
/// are already ascending — every sparse-kernel output whose axis order
/// survives the permutation, and every odometer-ordered relation).
/// Returns `None` on duplicate keys: the side holds two rows with the
/// same argument tuple, so the data is not functional and the hash
/// operators define the semantics.
fn sort_keyed(keys: Vec<u64>, vals: &[f64]) -> Option<(Vec<u64>, Vec<f64>)> {
    if keys.windows(2).all(|w| w[0] < w[1]) {
        return Some((keys, vals.to_vec()));
    }
    // Sort (key, measure) pairs directly rather than through an index
    // permutation: one cache-friendly pass instead of two gathers.
    let mut pairs: Vec<(u64, f64)> = keys.into_iter().zip(vals.iter().copied()).collect();
    pairs.sort_unstable_by_key(|p| p.0);
    if pairs.windows(2).any(|w| w[0].0 >= w[1].0) {
        return None;
    }
    Some(pairs.into_iter().unzip())
}

/// Estimated density of a relation over its inferred grid: present rows
/// per coordinate-space cell. `None` when the grid overflows even the
/// wide coordinate bound (then nothing but the hash path applies).
pub fn relation_density(rel: &FunctionalRelation) -> Option<f64> {
    match grid_cells_wide(&rel.inferred_domains())? {
        0 => Some(1.0),
        total => Some(rel.len() as f64 / total as f64),
    }
}

fn side_density(side: &SideRef<'_>) -> Option<f64> {
    match side {
        SideRef::Rows(r) => relation_density(r),
        SideRef::Sparse(s) => Some(s.density()),
    }
}

/// Whether the auto dispatcher would take the sparse path for this
/// operand under `mode`: a sparse factor keeps chaining sparse; a
/// row-major relation qualifies when its estimated density clears
/// [`SPARSE_MIN_DENSITY`] (always, under [`ReprMode::Sparse`]).
fn sparse_eligible(mode: ReprMode, side: &SideRef<'_>) -> bool {
    match mode {
        ReprMode::Off => false,
        ReprMode::Sparse => true,
        ReprMode::Auto => match side {
            SideRef::Sparse(_) => true,
            SideRef::Rows(_) => {
                side_density(side).is_some_and(|d| d >= SPARSE_MIN_DENSITY)
            }
        },
    }
}

/// Whether [`join_auto`] would take the sparse path for these inputs
/// under `mode` (the planner's annotation predicate; the kernel itself
/// re-checks feasibility at runtime and falls back on failure).
pub fn sparse_join_applies(
    mode: ReprMode,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
) -> bool {
    sparse_eligible(mode, &SideRef::Rows(l)) && sparse_eligible(mode, &SideRef::Rows(r))
}

/// Whether [`agg_auto`] would take the sparse path for this input under
/// `mode`.
pub fn sparse_agg_applies(mode: ReprMode, input: &FunctionalRelation) -> bool {
    sparse_eligible(mode, &SideRef::Rows(input))
}

/// [`ops::product_join`] dispatched three ways through the context's
/// [`DenseMode`] and [`ReprMode`]: the dense odometer kernel when the
/// inputs are support-exact complete grids, the sparse sorted-merge
/// kernel in the mid-density band, the hash join otherwise. This is the
/// entry point for callers outside the planner (the inference layer),
/// whose operator calls never pass through `choose_physical`.
pub fn join_auto(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
) -> Result<FunctionalRelation> {
    if dense::dense_join_applies(cx.dense_mode(), l, r) {
        return dense::join(cx, l, r);
    }
    if sparse_join_applies(cx.repr_mode(), l, r) {
        return join(cx, l, r);
    }
    ops::product_join(cx, l, r)
}

/// [`ops::group_by`] dispatched three ways through the context's
/// [`DenseMode`] and [`ReprMode`].
pub fn agg_auto(
    cx: &mut ExecContext<'_>,
    input: &FunctionalRelation,
    group_vars: &[VarId],
) -> Result<FunctionalRelation> {
    if dense::dense_agg_applies(cx.dense_mode(), input) {
        return dense::agg(cx, input, group_vars);
    }
    if sparse_agg_applies(cx.repr_mode(), input) {
        return agg(cx, input, group_vars);
    }
    ops::group_by(cx, input, group_vars)
}

/// Sparse product join: relinearize both sides to a shared-prefix axis
/// order and sorted-merge the runs. Function-identical to
/// [`ops::product_join`] (verified by `tests/repr_parity.rs`); falls
/// back to it when the coordinate space is infeasible or a side is not
/// functional. The output column order is `[shared, l-only, r-only]` —
/// a permutation of the hash join's union order; every operator is
/// schema-aware, so only the raw column layout differs.
pub fn join(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
) -> Result<FunctionalRelation> {
    cx.fault("sparse::join")?;
    match join_impl(cx, &SideRef::Rows(l), &SideRef::Rows(r))? {
        Some(sp) => {
            let rel = from_sparse(cx, sp)?;
            cx.record_join_ex(&[l, r], &rel, OpRepr::Sparse);
            cx.note_kernel_op(cx.kernel_mode());
            Ok(rel)
        }
        None => ops::product_join(cx, l, r),
    }
}

/// Sparse marginalization: relinearize to `[group, eliminated]` axis
/// order and collapse runs of equal group prefix. Function-identical to
/// [`ops::group_by`]; falls back to it on infeasibility.
pub fn agg(
    cx: &mut ExecContext<'_>,
    input: &FunctionalRelation,
    group_vars: &[VarId],
) -> Result<FunctionalRelation> {
    cx.fault("sparse::agg")?;
    for &v in group_vars {
        if !input.schema().contains(v) {
            return Err(AlgebraError::GroupVarNotInInput(v));
        }
    }
    match agg_impl(cx, &SideRef::Rows(input), group_vars)? {
        Some(sp) => {
            let rel = from_sparse(cx, sp)?;
            cx.record_group_by_ex(&[input], &rel, OpRepr::Sparse);
            Ok(rel)
        }
        None => ops::group_by(cx, input, group_vars),
    }
}

/// Materialize a factor into a row-major relation, counting the
/// conversion (a move for [`Factor::Rows`]).
pub fn materialize(cx: &mut ExecContext<'_>, f: Factor) -> Result<FunctionalRelation> {
    match f {
        Factor::Rows(r) => Ok(r),
        Factor::Sparse(s) => {
            cx.fault("sparse::convert")?;
            cx.checkpoint()?;
            cx.note_sparse_convert();
            Ok(s.into_relation())
        }
        Factor::Dense(d) => {
            cx.fault("dense::convert")?;
            cx.checkpoint()?;
            cx.note_dense_convert();
            Ok(d.into_relation())
        }
    }
}

/// Borrow a factor as a row-major relation, converting (and counting)
/// when it is not already one.
fn as_relation<'a>(
    cx: &mut ExecContext<'_>,
    f: &'a Factor,
) -> Result<Cow<'a, FunctionalRelation>> {
    match f {
        Factor::Rows(r) => Ok(Cow::Borrowed(r)),
        Factor::Sparse(s) => {
            cx.fault("sparse::convert")?;
            cx.checkpoint()?;
            cx.note_sparse_convert();
            Ok(Cow::Owned(s.to_relation()))
        }
        Factor::Dense(d) => {
            cx.fault("dense::convert")?;
            cx.checkpoint()?;
            cx.note_dense_convert();
            Ok(Cow::Owned(d.to_relation()))
        }
    }
}

fn side_of(f: &Factor) -> Option<SideRef<'_>> {
    match f {
        Factor::Rows(r) => Some(SideRef::Rows(r)),
        Factor::Sparse(s) => Some(SideRef::Sparse(s)),
        Factor::Dense(_) => None,
    }
}

/// Product join over factors, staying in sparse representation when
/// both sides qualify (so inference chains pay no per-step
/// materialization); otherwise materializes and dispatches dense/hash.
pub fn join_factor(cx: &mut ExecContext<'_>, l: &Factor, r: &Factor) -> Result<Factor> {
    cx.fault("sparse::join")?;
    if let (Some(ls), Some(rs)) = (side_of(l), side_of(r)) {
        let mode = cx.repr_mode();
        if sparse_eligible(mode, &ls) && sparse_eligible(mode, &rs) {
            if let Some(sp) = join_impl(cx, &ls, &rs)? {
                cx.record_factor_op(
                    SpanKind::Join,
                    &[l.len() as u64, r.len() as u64],
                    sp.len() as u64,
                    sp.schema().arity(),
                    OpRepr::Sparse,
                );
                cx.note_kernel_op(cx.kernel_mode());
                return Ok(Factor::Sparse(sp));
            }
        }
    }
    let lr = as_relation(cx, l)?;
    let rr = as_relation(cx, r)?;
    let rel = if dense::dense_join_applies(cx.dense_mode(), &lr, &rr) {
        dense::join(cx, &lr, &rr)?
    } else {
        ops::product_join(cx, &lr, &rr)?
    };
    Ok(Factor::Rows(rel))
}

/// Marginalization over a factor, staying in sparse representation when
/// the input qualifies.
pub fn agg_factor(
    cx: &mut ExecContext<'_>,
    f: &Factor,
    group_vars: &[VarId],
) -> Result<Factor> {
    cx.fault("sparse::agg")?;
    for &v in group_vars {
        if !f.schema().contains(v) {
            return Err(AlgebraError::GroupVarNotInInput(v));
        }
    }
    if let Some(side) = side_of(f) {
        if sparse_eligible(cx.repr_mode(), &side) {
            if let Some(sp) = agg_impl(cx, &side, group_vars)? {
                cx.record_factor_op(
                    SpanKind::GroupBy,
                    &[f.len() as u64],
                    sp.len() as u64,
                    sp.schema().arity(),
                    OpRepr::Sparse,
                );
                return Ok(Factor::Sparse(sp));
            }
        }
    }
    let fr = as_relation(cx, f)?;
    let rel = if dense::dense_agg_applies(cx.dense_mode(), &fr) {
        dense::agg(cx, &fr, group_vars)?
    } else {
        ops::group_by(cx, &fr, group_vars)?
    };
    Ok(Factor::Rows(rel))
}

/// Materialize a sparse kernel output back into rows (ascending
/// coordinate order), counting the conversion.
fn from_sparse(cx: &mut ExecContext<'_>, sp: SparseFactor) -> Result<FunctionalRelation> {
    cx.fault("sparse::convert")?;
    cx.checkpoint()?;
    cx.note_sparse_convert();
    Ok(sp.into_relation())
}

/// Build one side's sorted `(key, value)` columns for a `[shared, own]`
/// permuted axis order; counts a conversion when the side was row-major.
/// `None` on out-of-domain values or duplicate argument tuples.
#[allow(clippy::type_complexity)]
fn keyed_side(
    cx: &mut ExecContext<'_>,
    side: &SideRef<'_>,
    axes: &[(usize, u64)],
    doms_by_pos: &[u64],
) -> Result<Option<(Vec<u64>, Vec<f64>)>> {
    cx.fault("sparse::convert")?;
    cx.checkpoint()?;
    let arity = side.schema().arity();
    let mult = permuted_multipliers(arity, axes);
    let Some(keys) = side.permuted_keys(&mult, doms_by_pos) else {
        return Ok(None);
    };
    if matches!(side, SideRef::Rows(_)) {
        cx.note_sparse_convert();
    }
    Ok(sort_keyed(keys, side.measures()))
}

fn join_impl(
    cx: &mut ExecContext<'_>,
    l: &SideRef<'_>,
    r: &SideRef<'_>,
) -> Result<Option<SparseFactor>> {
    let shared_schema = l.schema().intersect(r.schema());
    let shared: &[VarId] = shared_schema.vars();
    let l_own = l.schema().difference(shared);
    let r_own = r.schema().difference(shared);
    let (ld, rd) = (l.domains(), r.domains());
    let dom_of = |s: &SideRef<'_>, d: &[u64], v: VarId| -> u64 {
        s.schema().position(v).ok().map_or(0, |p| d[p])
    };
    // A shared variable indexes through the wider of the two sides'
    // domains, so the prefix coordinates agree across sides.
    let shared_doms: Vec<u64> = shared
        .iter()
        .map(|&v| dom_of(l, &ld, v).max(dom_of(r, &rd, v)))
        .collect();
    let l_own_doms: Vec<u64> = l_own.iter().map(|v| dom_of(l, &ld, v)).collect();
    let r_own_doms: Vec<u64> = r_own.iter().map(|v| dom_of(r, &rd, v)).collect();

    let out_vars: Vec<VarId> = shared
        .iter()
        .copied()
        .chain(l_own.iter())
        .chain(r_own.iter())
        .collect();
    let out_doms: Vec<u64> = shared_doms
        .iter()
        .chain(&l_own_doms)
        .chain(&r_own_doms)
        .copied()
        .collect();
    if grid_cells_wide(&out_doms).is_none() {
        return Ok(None);
    }
    let a_own_cells = grid_cells_wide(&l_own_doms).expect("subproduct of feasible grid");
    let b_own_cells = grid_cells_wide(&r_own_doms).expect("subproduct of feasible grid");

    // Axis order per side: shared variables first (in the shared
    // schema's order on both sides), then the side's own variables.
    let side_axes = |s: &SideRef<'_>, own: &Schema, own_doms: &[u64]| -> Vec<(usize, u64)> {
        shared
            .iter()
            .zip(&shared_doms)
            .map(|(&v, &d)| (s.schema().position(v).expect("shared var"), d))
            .chain(
                own.iter()
                    .zip(own_doms)
                    .map(|(v, &d)| (s.schema().position(v).expect("own var"), d)),
            )
            .collect()
    };
    let doms_by_pos = |s: &SideRef<'_>, axes: &[(usize, u64)]| -> Vec<u64> {
        let mut doms = vec![0u64; s.schema().arity()];
        for &(p, d) in axes {
            doms[p] = d;
        }
        doms
    };
    let la = side_axes(l, &l_own, &l_own_doms);
    let Some((a_keys, a_vals)) = keyed_side(cx, l, &la, &doms_by_pos(l, &la))? else {
        return Ok(None);
    };
    let ra = side_axes(r, &r_own, &r_own_doms);
    let Some((b_keys, b_vals)) = keyed_side(cx, r, &ra, &doms_by_pos(r, &ra))? else {
        return Ok(None);
    };

    let out_schema = Schema::new(out_vars)?;
    let sr = cx.semiring();
    let budget = cx.budget();
    let arity = out_schema.arity();
    let mode = cx.kernel_mode();
    let (coords, values) = for_each_semiring!(
        sr,
        join_kernel(
            &a_keys,
            &a_vals,
            &b_keys,
            &b_vals,
            a_own_cells,
            b_own_cells,
            budget,
            arity,
            mode,
        )
    )?;
    let name = format!("({}⨝*{})", l_name(l), l_name(r));
    Ok(Some(SparseFactor::from_sorted_parts(
        name, out_schema, out_doms, coords, values,
    )))
}

fn l_name<'a>(s: &SideRef<'a>) -> &'a str {
    match s {
        SideRef::Rows(r) => r.name(),
        SideRef::Sparse(sp) => sp.name(),
    }
}

fn agg_impl(
    cx: &mut ExecContext<'_>,
    input: &SideRef<'_>,
    group_vars: &[VarId],
) -> Result<Option<SparseFactor>> {
    let doms = input.domains();
    let schema = input.schema();
    let gpos: Vec<usize> = group_vars
        .iter()
        .map(|&v| schema.position(v).expect("validated"))
        .collect();
    let group_doms: Vec<u64> = gpos.iter().map(|&p| doms[p]).collect();
    let elim: Vec<(usize, u64)> = schema
        .iter()
        .enumerate()
        .filter(|(_, v)| !group_vars.contains(v))
        .map(|(p, _)| (p, doms[p]))
        .collect();
    let all_doms: Vec<u64> = group_doms
        .iter()
        .copied()
        .chain(elim.iter().map(|e| e.1))
        .collect();
    if grid_cells_wide(&all_doms).is_none() {
        return Ok(None);
    }
    let elim_doms: Vec<u64> = elim.iter().map(|e| e.1).collect();
    let elim_cells = grid_cells_wide(&elim_doms).expect("subproduct of feasible grid");

    let axes: Vec<(usize, u64)> = gpos
        .iter()
        .zip(&group_doms)
        .map(|(&p, &d)| (p, d))
        .chain(elim.iter().copied())
        .collect();
    let doms_by_pos = {
        let mut d = vec![0u64; schema.arity()];
        for &(p, dom) in &axes {
            d[p] = dom;
        }
        d
    };
    let out_schema = Schema::new(group_vars.to_vec())?;
    let sr = cx.semiring();
    let name = format!("γ({})", l_name(input));

    // Scatter fast path: when the group grid is small enough for a direct
    // accumulator array, fold each input cell straight into its group
    // slot. No full permuted key, no sort of the eliminated axes, no
    // per-element division — the dominant costs of the merge path when
    // the group order disagrees with the input's axis order.
    let group_cells = grid_cells_wide(&group_doms).expect("subproduct of feasible grid");
    if scatter_agg_applies(group_cells, input.len()) {
        cx.fault("sparse::convert")?;
        cx.checkpoint()?;
        let gaxes: Vec<(usize, u64)> = gpos.iter().zip(&group_doms).map(|(&p, &d)| (p, d)).collect();
        let gmult = permuted_multipliers(schema.arity(), &gaxes);
        let Some(gkeys) = input.permuted_keys(&gmult, &doms_by_pos) else {
            return Ok(None);
        };
        if matches!(input, SideRef::Rows(_)) {
            cx.note_sparse_convert();
        }
        let budget = cx.budget();
        let arity = out_schema.arity();
        let (coords, values) = for_each_semiring!(
            sr,
            agg_scatter_kernel(&gkeys, input.measures(), group_cells, budget, arity)
        )?;
        return Ok(Some(SparseFactor::from_sorted_parts(
            name, out_schema, group_doms, coords, values,
        )));
    }

    let Some((keys, vals)) = keyed_side(cx, input, &axes, &doms_by_pos)? else {
        return Ok(None);
    };
    let budget = cx.budget();
    let arity = out_schema.arity();
    let (coords, values) =
        for_each_semiring!(sr, agg_kernel(&keys, &vals, elim_cells, budget, arity))?;
    Ok(Some(SparseFactor::from_sorted_parts(
        name, out_schema, group_doms, coords, values,
    )))
}

/// Sorted-merge join kernel over permuted key columns. Runs of equal
/// shared prefix (`key / own_cells`) pair up; each output coordinate is
/// `a_key * b_own_cells + b_own_index`, ascending by construction.
/// Monomorphized per semiring so the inner multiply is a static op.
///
/// [`KernelMode::Chunked`] emits each `(a row × b run)` value column in
/// [`KERNEL_BLOCK`]-sized `extend` strides — a straight-line multiply of
/// the b value column by a scalar, which autovectorizes — charging the
/// budget once per block via [`OpGuard::produced_many`]. The multiply is
/// elementwise, so scalar and chunked outputs are bit-identical.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn join_kernel<S: SemiringOps>(
    a_keys: &[u64],
    a_vals: &[f64],
    b_keys: &[u64],
    b_vals: &[f64],
    a_own_cells: u64,
    b_own_cells: u64,
    budget: Option<&ExecBudget>,
    arity: usize,
    mode: KernelMode,
) -> Result<(Vec<u64>, Vec<f64>)> {
    let mut guard = OpGuard::new(budget, arity);
    let mut out_keys: Vec<u64> = Vec::with_capacity(a_keys.len().max(b_keys.len()));
    let mut out_vals: Vec<f64> = Vec::with_capacity(out_keys.capacity());
    // Hoist the per-element divisions: the b side's within-run offsets
    // (the merge then only adds) and both sides' shared prefixes (the
    // run-detection loops then compare precomputed integers).
    let b_own: Vec<u64> = b_keys.iter().map(|&k| k % b_own_cells).collect();
    let a_shared: Vec<u64> = a_keys.iter().map(|&k| k / a_own_cells).collect();
    let b_shared: Vec<u64> = b_keys.iter().map(|&k| k / b_own_cells).collect();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_keys.len() && j < b_keys.len() {
        guard.poll()?;
        let sa = a_shared[i];
        let sb = b_shared[j];
        if sa < sb {
            i += 1;
            continue;
        }
        if sb < sa {
            j += 1;
            continue;
        }
        let mut ia = i + 1;
        while ia < a_keys.len() && a_shared[ia] == sa {
            ia += 1;
        }
        let mut jb = j + 1;
        while jb < b_keys.len() && b_shared[jb] == sb {
            jb += 1;
        }
        for ai in i..ia {
            let base = a_keys[ai] * b_own_cells;
            let va = a_vals[ai];
            match mode {
                KernelMode::Scalar => {
                    for bj in j..jb {
                        guard.poll()?;
                        out_keys.push(base + b_own[bj]);
                        out_vals.push(S::mul(va, b_vals[bj]));
                        guard.produced()?;
                    }
                }
                KernelMode::Chunked => {
                    let mut t = j;
                    while t < jb {
                        guard.poll()?;
                        let blk = (jb - t).min(KERNEL_BLOCK);
                        out_keys.extend(b_own[t..t + blk].iter().map(|&o| base + o));
                        out_vals.extend(b_vals[t..t + blk].iter().map(|&vb| S::mul(va, vb)));
                        guard.produced_many(blk as u64)?;
                        t += blk;
                    }
                }
            }
        }
        i = ia;
        j = jb;
    }
    guard.finish()?;
    Ok((out_keys, out_vals))
}

/// Coordinate-collapse marginalization kernel: one pass over the sorted
/// permuted keys, folding each run of equal group prefix
/// (`key / elim_cells`) with the static additive op. The accumulator is
/// validated once per output cell, like the dense kernel (an invalid
/// intermediate can only end in an invalid final value).
fn agg_kernel<S: SemiringOps>(
    keys: &[u64],
    vals: &[f64],
    elim_cells: u64,
    budget: Option<&ExecBudget>,
    arity: usize,
) -> Result<(Vec<u64>, Vec<f64>)> {
    let mut guard = OpGuard::new(budget, arity);
    let mut out_keys: Vec<u64> = Vec::new();
    let mut out_vals: Vec<f64> = Vec::new();
    let mut i = 0usize;
    while i < keys.len() {
        guard.poll()?;
        let g = keys[i] / elim_cells;
        let mut acc = vals[i];
        let mut j = i + 1;
        while j < keys.len() && keys[j] / elim_cells == g {
            acc = S::add(acc, vals[j]);
            j += 1;
        }
        if !S::KIND.is_valid_accumulation(acc) {
            return Err(AlgebraError::NonFiniteMeasure {
                op: "sparse::agg",
                value: acc,
            });
        }
        out_keys.push(g);
        out_vals.push(acc);
        guard.produced()?;
        i = j;
    }
    guard.finish()?;
    Ok((out_keys, out_vals))
}

/// Accumulator-array cap for the scatter marginalization: past this the
/// zero-fill and cache misses of the array outweigh the sort it avoids.
const SCATTER_MAX_CELLS: u64 = 1 << 22;

/// Whether the scatter path's accumulator array is worth allocating:
/// the group grid must fit the cap and not dwarf the input (zeroing a
/// grid much larger than the data costs more than sorting the data).
fn scatter_agg_applies(group_cells: u64, input_len: usize) -> bool {
    group_cells <= SCATTER_MAX_CELLS && group_cells <= 8 * (input_len as u64).max(512)
}

/// Scatter marginalization kernel: each input cell folds directly into
/// its group coordinate's accumulator slot; touched coordinates are
/// collected and sorted at the end (at most `min(group_cells, n)` of
/// them — far fewer than the `n` full keys the merge path sorts).
/// Duplicate argument tuples fold together here, exactly as the hash
/// aggregate treats them (the merge path instead refuses and falls
/// back — either way the answer is the hash operators').
fn agg_scatter_kernel<S: SemiringOps>(
    gkeys: &[u64],
    vals: &[f64],
    group_cells: u64,
    budget: Option<&ExecBudget>,
    arity: usize,
) -> Result<(Vec<u64>, Vec<f64>)> {
    let mut guard = OpGuard::new(budget, arity);
    let mut acc = vec![0.0f64; group_cells as usize];
    let mut seen = vec![false; group_cells as usize];
    let mut touched: Vec<u64> = Vec::new();
    for (&g, &v) in gkeys.iter().zip(vals) {
        guard.poll()?;
        let gi = g as usize;
        if seen[gi] {
            acc[gi] = S::add(acc[gi], v);
        } else {
            seen[gi] = true;
            acc[gi] = v;
            touched.push(g);
        }
    }
    touched.sort_unstable();
    let mut out_vals = Vec::with_capacity(touched.len());
    for &g in &touched {
        let v = acc[g as usize];
        if !S::KIND.is_valid_accumulation(v) {
            return Err(AlgebraError::NonFiniteMeasure {
                op: "sparse::agg",
                value: v,
            });
        }
        out_vals.push(v);
        guard.produced()?;
    }
    guard.finish()?;
    Ok((touched, out_vals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_semiring::SemiringKind;
    use mpf_storage::Catalog;

    fn fixtures() -> (Catalog, FunctionalRelation, FunctionalRelation) {
        let mut cat = Catalog::new();
        let a = cat.add_var("a", 6).unwrap();
        let b = cat.add_var("b", 5).unwrap();
        let c = cat.add_var("c", 4).unwrap();
        // Partial relations (~40% density) with interleaved support so
        // the merge hits both matching and non-matching runs.
        let l = FunctionalRelation::from_rows(
            "l",
            Schema::new(vec![a, b]).unwrap(),
            (0..30u32)
                .filter(|i| i % 5 != 1 && i % 7 != 2)
                .map(|i| (vec![i / 5, i % 5], 1.0 + i as f64)),
        )
        .unwrap();
        let r = FunctionalRelation::from_rows(
            "r",
            Schema::new(vec![b, c]).unwrap(),
            (0..20u32)
                .filter(|i| i % 3 != 0)
                .map(|i| (vec![i / 4, i % 4], 0.5 + i as f64)),
        )
        .unwrap();
        (cat, l, r)
    }

    #[test]
    fn sparse_join_matches_hash_join() {
        let (_, l, r) = fixtures();
        for sr in SemiringKind::ALL {
            let want = ops::raw::product_join(sr, &l, &r).unwrap();
            let mut cx = ExecContext::new(sr);
            let got = join(&mut cx, &l, &r).unwrap();
            assert_eq!(cx.stats().sparse_joins, 1, "{sr:?} took the sparse path");
            assert!(want.function_eq(&got), "{sr:?}");
        }
    }

    #[test]
    fn sparse_agg_matches_group_by() {
        let (cat, l, _) = fixtures();
        let a = cat.var("a").unwrap();
        let b = cat.var("b").unwrap();
        for sr in SemiringKind::ALL {
            for gv in [vec![a], vec![b, a], vec![]] {
                let want = ops::raw::group_by(sr, &l, &gv).unwrap();
                let mut cx = ExecContext::new(sr);
                let got = agg(&mut cx, &l, &gv).unwrap();
                assert_eq!(cx.stats().sparse_group_bys, 1, "{sr:?} {gv:?}");
                assert!(want.function_eq(&got), "{sr:?} {gv:?}");
            }
        }
    }

    #[test]
    fn disjoint_schemas_cross_product() {
        let mut cat = Catalog::new();
        let x = cat.add_var("x", 3).unwrap();
        let y = cat.add_var("y", 3).unwrap();
        let l = FunctionalRelation::from_rows(
            "l",
            Schema::new(vec![x]).unwrap(),
            [(vec![0], 2.0), (vec![2], 3.0)],
        )
        .unwrap();
        let r = FunctionalRelation::from_rows(
            "r",
            Schema::new(vec![y]).unwrap(),
            [(vec![1], 5.0), (vec![2], 7.0)],
        )
        .unwrap();
        let sr = SemiringKind::SumProduct;
        let want = ops::raw::product_join(sr, &l, &r).unwrap();
        let got = join(&mut ExecContext::new(sr), &l, &r).unwrap();
        assert_eq!(got.len(), 4);
        assert!(want.function_eq(&got));
    }

    #[test]
    fn non_functional_input_falls_back_to_hash() {
        let mut cat = Catalog::new();
        let x = cat.add_var("x", 3).unwrap();
        let schema = Schema::new(vec![x]).unwrap();
        let mut dup = FunctionalRelation::new("d", schema.clone());
        dup.push_row(&[1], 1.0).unwrap();
        dup.push_row(&[1], 2.0).unwrap();
        let mut other = FunctionalRelation::new("o", schema);
        other.push_row(&[1], 10.0).unwrap();
        let sr = SemiringKind::SumProduct;
        let want = ops::raw::product_join(sr, &dup, &other).unwrap();
        let mut cx = ExecContext::new(sr);
        let got = join(&mut cx, &dup, &other).unwrap();
        assert_eq!(cx.stats().sparse_joins, 0, "fell back");
        assert_eq!(cx.stats().joins, 1);
        assert_eq!(got.len(), want.len());
    }

    #[test]
    fn wide_grids_join_sparse_where_dense_cannot() {
        // A 2^13 × 2^13 coordinate space is beyond MAX_DENSE_CELLS but
        // fine for the sparse kernels.
        let mut cat = Catalog::new();
        let x = cat.add_var("x", 1 << 13).unwrap();
        let y = cat.add_var("y", 1 << 13).unwrap();
        let mut l = FunctionalRelation::new("l", Schema::new(vec![x]).unwrap());
        l.push_row(&[(1 << 13) - 1], 2.0).unwrap();
        let mut r = FunctionalRelation::new("r", Schema::new(vec![x, y]).unwrap());
        r.push_row(&[(1 << 13) - 1, (1 << 13) - 1], 3.0).unwrap();
        r.push_row(&[0, 5], 11.0).unwrap();
        let sr = SemiringKind::SumProduct;
        let want = ops::raw::product_join(sr, &l, &r).unwrap();
        let mut cx = ExecContext::new(sr);
        let got = join(&mut cx, &l, &r).unwrap();
        assert_eq!(cx.stats().sparse_joins, 1);
        assert!(want.function_eq(&got));
    }

    #[test]
    fn factor_chain_stays_sparse() {
        let (cat, l, r) = fixtures();
        let b = cat.var("b").unwrap();
        let c = cat.var("c").unwrap();
        let sr = SemiringKind::SumProduct;
        let mut cx = ExecContext::new(sr).with_repr(ReprMode::Sparse);
        let lf = Factor::from(l.clone());
        let rf = Factor::from(r.clone());
        let joined = join_factor(&mut cx, &lf, &rf).unwrap();
        assert_eq!(joined.repr_name(), "sparse");
        let marg = agg_factor(&mut cx, &joined, &[b, c]).unwrap();
        assert_eq!(marg.repr_name(), "sparse");
        assert_eq!(cx.stats().sparse_joins, 1);
        assert_eq!(cx.stats().sparse_group_bys, 1);
        let got = materialize(&mut cx, marg).unwrap();
        let wj = ops::raw::product_join(sr, &l, &r).unwrap();
        let want = ops::raw::group_by(sr, &wj, &[b, c]).unwrap();
        assert!(want.function_eq(&got));
    }

    #[test]
    fn auto_dispatch_gates_on_density() {
        let (_, l, r) = fixtures();
        // ~40% dense fixtures clear the 1% floor.
        assert!(sparse_join_applies(ReprMode::Auto, &l, &r));
        assert!(!sparse_join_applies(ReprMode::Off, &l, &r));
        // One present row in a wide grid is far below the floor: Auto
        // declines, the forced mode accepts.
        let mut cat = Catalog::new();
        let x = cat.add_var("x", 1 << 10).unwrap();
        let y = cat.add_var("y", 1 << 10).unwrap();
        let mut thin = FunctionalRelation::new("t", Schema::new(vec![x, y]).unwrap());
        thin.push_row(&[1023, 1023], 1.0).unwrap();
        assert!(!sparse_agg_applies(ReprMode::Auto, &thin));
        assert!(sparse_agg_applies(ReprMode::Sparse, &thin));
        let mut cx = ExecContext::new(SemiringKind::SumProduct);
        let got = agg_auto(&mut cx, &thin, &[x]).unwrap();
        assert_eq!(cx.stats().sparse_group_bys, 0, "hash path below the floor");
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn budget_trips_like_hash() {
        let (_, l, r) = fixtures();
        let sr = SemiringKind::SumProduct;
        let limits = crate::ExecLimits::none().with_max_output_rows(10);
        let err = join(&mut ExecContext::with_limits(sr, limits.clone()), &l, &r).unwrap_err();
        let hash_err =
            ops::product_join(&mut ExecContext::with_limits(sr, limits), &l, &r).unwrap_err();
        assert_eq!(err, hash_err);
    }

    #[test]
    fn agg_rejects_invalid_accumulation() {
        let mut cat = Catalog::new();
        let x = cat.add_var("x", 2).unwrap();
        let y = cat.add_var("y", 2).unwrap();
        let rel = FunctionalRelation::from_rows(
            "r",
            Schema::new(vec![x, y]).unwrap(),
            [
                (vec![0, 0], f64::MAX),
                (vec![0, 1], f64::MAX),
                (vec![1, 0], 1.0),
            ],
        )
        .unwrap();
        let err = agg(&mut ExecContext::new(SemiringKind::SumProduct), &rel, &[x]).unwrap_err();
        assert!(matches!(err, AlgebraError::NonFiniteMeasure { op: "sparse::agg", .. }));
    }

    #[test]
    fn mode_from_env_defaults_to_auto() {
        // Parser-only check (no env mutation: tests run in parallel and
        // the context carries the mode explicitly).
        assert_eq!(ReprMode::default(), ReprMode::Auto);
    }
}
