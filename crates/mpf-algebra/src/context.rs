//! The single execution context threaded through every physical operator.
//!
//! [`ExecContext`] owns the pieces that used to be scattered across the
//! executor and the `*_budgeted` operator variants: the active semiring,
//! the optional [`ExecBudget`] (row/cell caps, deadline, cancellation),
//! the mutable [`ExecStats`] work counters, and the fault-injection hooks
//! ([`crate::fault`]). Every operator in [`crate::ops`],
//! [`crate::sort_ops`], and [`crate::partitioned`] takes
//! `&mut ExecContext` as its first argument, so budgets, stats, and
//! failpoints apply uniformly whether an operator is reached through the
//! [`Executor`](crate::Executor), the inference layer (Belief
//! Propagation, VE-cache, Bayesian networks), or a direct call.
//!
//! A context either owns its budget (built from [`ExecLimits`] by
//! [`ExecContext::with_limits`] — the inference entry points do this) or
//! borrows one owned elsewhere ([`ExecContext::with_budget`] — the
//! executor does this so the budget's cell counter outlives individual
//! executions and callers can inspect it afterwards).
//!
//! # Parallel execution
//!
//! [`ExecContext::fork`] produces a child context for a worker thread:
//! the child charges the *same* budget (the cell counter is atomic and
//! the cancellation/deadline state is shared), shares the parent's
//! scanned-relation ledger (so a base relation scanned from two
//! concurrent subplans is still charged once, exactly as in sequential
//! execution), and accumulates its own fresh [`ExecStats`]. When the
//! worker finishes, the parent merges the child's counters back with
//! [`ExecContext::absorb`] in a deterministic (plan) order; all
//! [`ExecStats`] fields merge commutatively (sums, and `max` for the
//! high-water mark), so the totals are identical to a sequential run.
//! The number of *extra* workers the whole execution may fan out to is
//! bounded by a token pool shared by every fork of one root context
//! (`threads - 1` tokens).

use std::collections::HashSet;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::{Arc, Mutex};

use mpf_semiring::SemiringKind;
use mpf_storage::FunctionalRelation;

use crate::dense::{DenseMode, KernelMode};
use crate::limits::{ExecBudget, ExecLimits, OpGuard, DEFAULT_WORKSPACE_BYTES};
use crate::sparse::ReprMode;
use crate::trace::{OpRepr, SpanDesc, SpanKind, TraceCollector, TraceLevel, TraceTree};
use crate::{fault, ExecStats, Result};

/// Owned-or-borrowed budget slot.
#[derive(Debug)]
enum BudgetSlot<'b> {
    /// No limits configured: every budget operation is a no-op.
    None,
    /// The context owns the budget (inference entry points). Shared, so
    /// forked worker contexts charge the same counters.
    Owned(Arc<ExecBudget>),
    /// The budget lives in the executor (or another caller) so its
    /// counters survive the context.
    Borrowed(&'b ExecBudget),
}

/// Execution state threaded through every physical operator: semiring,
/// optional resource budget, work counters, and fault-injection hooks.
#[derive(Debug)]
pub struct ExecContext<'b> {
    semiring: SemiringKind,
    budget: BudgetSlot<'b>,
    stats: ExecStats,
    /// Base relations already charged to the budget as materialized
    /// input, so repeated scans of the same relation are charged once.
    /// Shared across forks: two concurrent subplans scanning the same
    /// relation still charge it once, matching sequential execution.
    charged_scans: Arc<Mutex<HashSet<String>>>,
    /// Worker threads this execution may use (including the caller).
    threads: usize,
    /// Workspace bytes used to derive partition counts.
    workspace_bytes: u64,
    /// Spare worker tokens (`threads - 1`) shared by every fork of one
    /// root context, bounding total fan-out across nested fork points.
    fork_tokens: Arc<AtomicIsize>,
    /// Per-operator span collector ([`TraceLevel::Off`] by default:
    /// every trace hook is a single branch, no allocation).
    trace: TraceCollector,
    /// Whether [`crate::dense`] kernels may be dispatched to
    /// ([`DenseMode::from_env`] by default; planner configs and tests set
    /// it explicitly so runs are environment-independent).
    dense: DenseMode,
    /// Whether [`crate::sparse`] tensor kernels may be dispatched to
    /// ([`ReprMode::from_env`] by default; planner configs and tests set
    /// it explicitly so runs are environment-independent).
    repr: ReprMode,
    /// Which inner-loop flavor the monomorphized kernels run
    /// ([`KernelMode::from_env`] by default; tests set it explicitly so
    /// runs are environment-independent).
    kernel: KernelMode,
}

impl<'b> ExecContext<'b> {
    fn build(semiring: SemiringKind, budget: BudgetSlot<'b>, threads: usize, workspace_bytes: u64) -> ExecContext<'b> {
        let threads = threads.max(1);
        ExecContext {
            semiring,
            budget,
            stats: ExecStats::default(),
            charged_scans: Arc::new(Mutex::new(HashSet::new())),
            threads,
            workspace_bytes,
            fork_tokens: Arc::new(AtomicIsize::new(threads as isize - 1)),
            trace: TraceCollector::new(TraceLevel::Off),
            dense: DenseMode::from_env(),
            repr: ReprMode::from_env(),
            kernel: KernelMode::from_env(),
        }
    }

    /// An unlimited context: no budget, fresh stats, environment-default
    /// parallelism ([`crate::limits::default_threads`]).
    pub fn new(semiring: SemiringKind) -> ExecContext<'static> {
        ExecContext::build(
            semiring,
            BudgetSlot::None,
            crate::limits::default_threads(),
            DEFAULT_WORKSPACE_BYTES,
        )
    }

    /// A context enforcing `limits` through an owned budget. Unlimited
    /// `limits` allocate no budget (zero per-row overhead); a deadline's
    /// wall clock starts now. The `threads`/`workspace_bytes` knobs are
    /// taken from `limits` either way.
    pub fn with_limits(semiring: SemiringKind, limits: ExecLimits) -> ExecContext<'static> {
        let threads = limits.effective_threads();
        let workspace = limits.effective_workspace_bytes();
        ExecContext::build(
            semiring,
            if limits.is_unlimited() {
                BudgetSlot::None
            } else {
                BudgetSlot::Owned(Arc::new(ExecBudget::new(limits)))
            },
            threads,
            workspace,
        )
    }

    /// A context charging a budget owned by the caller (the executor's
    /// per-query budget, whose counters outlive this context). Knobs are
    /// taken from the budget's limits when present.
    pub fn with_budget(
        semiring: SemiringKind,
        budget: Option<&'b ExecBudget>,
    ) -> ExecContext<'b> {
        let (threads, workspace) = match budget {
            Some(b) => (
                b.limits().effective_threads(),
                b.limits().effective_workspace_bytes(),
            ),
            None => (crate::limits::default_threads(), DEFAULT_WORKSPACE_BYTES),
        };
        ExecContext::build(
            semiring,
            match budget {
                Some(b) => BudgetSlot::Borrowed(b),
                None => BudgetSlot::None,
            },
            threads,
            workspace,
        )
    }

    /// Override the worker-thread count (builder style). Resets the
    /// fork-token pool, so call this before execution starts.
    pub fn with_threads(mut self, threads: usize) -> ExecContext<'b> {
        self.set_threads(threads);
        self
    }

    /// Override the worker-thread count. Resets the fork-token pool.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
        self.fork_tokens = Arc::new(AtomicIsize::new(self.threads as isize - 1));
    }

    /// Override the dense-kernel dispatch mode (builder style).
    pub fn with_dense(mut self, mode: DenseMode) -> ExecContext<'b> {
        self.dense = mode;
        self
    }

    /// Override the dense-kernel dispatch mode.
    pub fn set_dense(&mut self, mode: DenseMode) {
        self.dense = mode;
    }

    /// The dense-kernel dispatch mode ([`crate::dense::join_auto`] and
    /// [`crate::dense::agg_auto`] consult this).
    pub fn dense_mode(&self) -> DenseMode {
        self.dense
    }

    /// Override the sparse-tensor dispatch mode (builder style).
    pub fn with_repr(mut self, mode: ReprMode) -> ExecContext<'b> {
        self.repr = mode;
        self
    }

    /// Override the sparse-tensor dispatch mode.
    pub fn set_repr(&mut self, mode: ReprMode) {
        self.repr = mode;
    }

    /// The sparse-tensor dispatch mode ([`crate::sparse::join_auto`] and
    /// [`crate::sparse::agg_auto`] consult this).
    pub fn repr_mode(&self) -> ReprMode {
        self.repr
    }

    /// Override the kernel inner-loop mode (builder style).
    pub fn with_kernel(mut self, mode: KernelMode) -> ExecContext<'b> {
        self.kernel = mode;
        self
    }

    /// Override the kernel inner-loop mode.
    pub fn set_kernel(&mut self, mode: KernelMode) {
        self.kernel = mode;
    }

    /// The kernel inner-loop mode (the [`crate::dense`] and
    /// [`crate::sparse`] kernels consult this).
    pub fn kernel_mode(&self) -> KernelMode {
        self.kernel
    }

    /// Enable per-operator tracing (builder style).
    pub fn with_trace(mut self, level: TraceLevel) -> ExecContext<'b> {
        self.set_trace_level(level);
        self
    }

    /// Enable or disable per-operator tracing.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.trace.set_level(level);
    }

    /// The active trace level.
    pub fn trace_level(&self) -> TraceLevel {
        self.trace.level()
    }

    /// True when spans are being collected. Callers building expensive
    /// span labels should gate on this.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.trace.enabled()
    }

    /// Open a span for an operator about to run; `desc` is evaluated only
    /// when tracing is on. Pair with [`ExecContext::span_close`].
    pub fn span_open(&mut self, desc: impl FnOnce() -> SpanDesc) {
        self.trace.open(desc);
    }

    /// Open a phase span grouping subsequent operator spans (inference
    /// entry points use this; operator accounting attaches children).
    pub fn span_phase(&mut self, label: &str) {
        self.trace.open(|| SpanDesc::phase(label));
    }

    /// Close the innermost open span, recording wall time and an optional
    /// failure; `fault` is evaluated only when tracing is on.
    pub fn span_close(&mut self, fault: impl FnOnce() -> Option<String>) {
        self.trace.close(fault);
    }

    /// Update the innermost open span's partition count (operators that
    /// re-derive partitioning at run time report the actual count).
    pub fn span_set_partitions(&mut self, partitions: usize) {
        self.trace.set_partitions(partitions);
    }

    /// Take the finished trace, resetting the collector.
    pub fn take_trace(&mut self) -> TraceTree {
        self.trace.take()
    }

    /// Graft a finished worker's spans under the innermost open span (or
    /// the roots), in call order — the trace counterpart of
    /// [`ExecContext::absorb`]. Callers absorb children in plan order, so
    /// the tree is identical at every thread count.
    pub fn absorb_trace(&mut self, trace: TraceTree) {
        self.trace.absorb(trace.roots);
    }

    /// The active semiring.
    pub fn semiring(&self) -> SemiringKind {
        self.semiring
    }

    /// Worker threads this execution may use (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Workspace bytes used to derive partition counts for the
    /// partitioned operators.
    pub fn workspace_bytes(&self) -> u64 {
        self.workspace_bytes
    }

    /// The budget being charged, if limits are configured.
    pub fn budget(&self) -> Option<&ExecBudget> {
        match &self.budget {
            BudgetSlot::None => None,
            BudgetSlot::Owned(b) => Some(b),
            BudgetSlot::Borrowed(b) => Some(b),
        }
    }

    /// A child context for a worker thread: same semiring and knobs, the
    /// *same* budget (atomic counters, shared deadline/cancellation), the
    /// same scanned-relation ledger and fork-token pool, and fresh stats.
    /// Merge the child's stats back with [`ExecContext::absorb`].
    pub fn fork(&self) -> ExecContext<'b> {
        ExecContext {
            semiring: self.semiring,
            budget: match &self.budget {
                BudgetSlot::None => BudgetSlot::None,
                BudgetSlot::Owned(b) => BudgetSlot::Owned(Arc::clone(b)),
                BudgetSlot::Borrowed(b) => BudgetSlot::Borrowed(b),
            },
            stats: ExecStats::default(),
            charged_scans: Arc::clone(&self.charged_scans),
            threads: self.threads,
            workspace_bytes: self.workspace_bytes,
            fork_tokens: Arc::clone(&self.fork_tokens),
            trace: TraceCollector::new(self.trace.level()),
            dense: self.dense,
            repr: self.repr,
            kernel: self.kernel,
        }
    }

    /// Merge a finished worker's counters into this context. Callers
    /// absorb children in plan order; because every [`ExecStats`] field
    /// merges commutatively the totals equal a sequential run's.
    pub fn absorb(&mut self, child: ExecStats) {
        self.stats.merge(&child);
    }

    /// Try to take a worker token for one extra thread. Returns `false`
    /// when the execution is single-threaded or the pool is exhausted;
    /// pair a `true` with [`ExecContext::release_worker`].
    pub(crate) fn try_acquire_worker(&self) -> bool {
        if self.threads <= 1 {
            return false;
        }
        if self.fork_tokens.fetch_sub(1, Ordering::AcqRel) > 0 {
            true
        } else {
            self.fork_tokens.fetch_add(1, Ordering::AcqRel);
            false
        }
    }

    /// Return a worker token taken by [`ExecContext::try_acquire_worker`].
    pub(crate) fn release_worker(&self) {
        self.fork_tokens.fetch_add(1, Ordering::AcqRel);
    }

    /// The work counters accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Take the accumulated work counters, resetting them to zero.
    pub fn take_stats(&mut self) -> ExecStats {
        std::mem::take(&mut self.stats)
    }

    /// An [`OpGuard`] for one operator emitting rows of `arity` variables.
    pub fn guard(&self, arity: usize) -> OpGuard<'_> {
        OpGuard::new(self.budget(), arity)
    }

    /// Fault-injection hook: fail if the named site is armed (a no-op
    /// without the `fault-injection` feature).
    pub fn fault(&self, site: &str) -> Result<()> {
        fault::check(site)
    }

    /// Poll the deadline and cancellation token, if any.
    pub fn checkpoint(&self) -> Result<()> {
        match self.budget() {
            Some(b) => b.checkpoint(),
            None => Ok(()),
        }
    }

    /// Record a scan of base relation `name`: counts rows/pages in the
    /// stats on every scan, but charges the budget only the first time
    /// each relation is scanned (scans borrow the stored relation — there
    /// is no per-scan clone to charge). The ledger is shared across
    /// forks, so concurrent subplans also charge each relation once.
    pub fn record_scan(&mut self, name: &str, rel: &FunctionalRelation) -> Result<()> {
        self.stats.rows_scanned += rel.len() as u64;
        self.stats.pages_io += rel.estimated_pages();
        self.trace_op(SpanKind::Scan, &[], rel, OpRepr::Rows);
        if let Some(budget) = self.budget() {
            budget.checkpoint()?;
        }
        let mut charged = self
            .charged_scans
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if !charged.contains(name) {
            if let Some(budget) = self.budget() {
                budget.charge_output(rel.len() as u64, rel.schema().arity())?;
            }
            charged.insert(name.to_string());
        }
        Ok(())
    }

    /// Account one operator's input/output cardinalities in the stats
    /// (rows processed, simulated page IO, high-water intermediate size).
    pub(crate) fn account(
        &mut self,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
    ) {
        for rel in inputs {
            self.stats.rows_processed += rel.len() as u64;
            self.stats.pages_io += rel.estimated_pages();
        }
        self.stats.rows_processed += output.len() as u64;
        self.stats.pages_io += output.estimated_pages();
        self.stats.max_intermediate_rows =
            self.stats.max_intermediate_rows.max(output.len() as u64);
    }

    /// Account a join operator (any algorithm).
    pub(crate) fn record_join(
        &mut self,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
    ) {
        self.record_join_ex(inputs, output, OpRepr::Rows);
    }

    /// [`ExecContext::record_join`] with an explicit representation:
    /// sparse/dense joins count in both `joins` and their per-repr
    /// counter and mark their span.
    pub(crate) fn record_join_ex(
        &mut self,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
        repr: OpRepr,
    ) {
        self.account(inputs, output);
        self.stats.joins += 1;
        match repr {
            OpRepr::Rows => {}
            OpRepr::Sparse => self.stats.sparse_joins += 1,
            OpRepr::Dense => self.stats.dense_joins += 1,
        }
        self.trace_op(SpanKind::Join, inputs, output, repr);
    }

    /// Account a group-by operator (any algorithm).
    pub(crate) fn record_group_by(
        &mut self,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
    ) {
        self.record_group_by_ex(inputs, output, OpRepr::Rows);
    }

    /// [`ExecContext::record_group_by`] with an explicit representation.
    pub(crate) fn record_group_by_ex(
        &mut self,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
        repr: OpRepr,
    ) {
        self.account(inputs, output);
        self.stats.group_bys += 1;
        match repr {
            OpRepr::Rows => {}
            OpRepr::Sparse => self.stats.sparse_group_bys += 1,
            OpRepr::Dense => self.stats.dense_group_bys += 1,
        }
        self.trace_op(SpanKind::GroupBy, inputs, output, repr);
    }

    /// Account a fused join→marginalize operator: the pair counts as one
    /// join *and* one group-by (so totals reconcile with an unfused plan)
    /// plus one fused-op tick, but only the *output* is accounted as an
    /// intermediate — the join product is never materialized, which is
    /// exactly the point of fusing.
    pub(crate) fn record_join_agg_ex(
        &mut self,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
        repr: OpRepr,
    ) {
        self.account(inputs, output);
        self.stats.joins += 1;
        self.stats.group_bys += 1;
        self.stats.fused_join_aggs += 1;
        match repr {
            OpRepr::Rows => {}
            OpRepr::Sparse => {
                self.stats.sparse_joins += 1;
                self.stats.sparse_group_bys += 1;
            }
            OpRepr::Dense => {
                self.stats.dense_joins += 1;
                self.stats.dense_group_bys += 1;
            }
        }
        self.trace_op(SpanKind::GroupBy, inputs, output, repr);
        self.trace.set_fused(true);
    }

    /// Account a selection operator.
    pub(crate) fn record_select(
        &mut self,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
    ) {
        self.account(inputs, output);
        self.stats.selects += 1;
        self.trace_op(SpanKind::Select, inputs, output, OpRepr::Rows);
    }

    /// Count one dense↔rows boundary conversion. Conversions charge no
    /// budget cells (the factor replaces its operand), so they surface
    /// only in the stats counter.
    pub(crate) fn note_dense_convert(&mut self) {
        self.stats.dense_converts += 1;
    }

    /// Count one sparse↔rows boundary conversion.
    pub(crate) fn note_sparse_convert(&mut self) {
        self.stats.sparse_converts += 1;
    }

    /// Count one kernel dispatch by inner-loop mode and tag the active
    /// span with `kernel=`. Call *after* the operator's `record_*` hook
    /// so an ad-hoc leaf span exists to tag.
    pub(crate) fn note_kernel_op(&mut self, mode: KernelMode) {
        match mode {
            KernelMode::Scalar => self.stats.kernel_scalar_ops += 1,
            KernelMode::Chunked => self.stats.kernel_chunked_ops += 1,
        }
        self.trace.set_kernel(mode.name());
    }

    /// [`ExecContext::record_join_ex`]/[`ExecContext::record_group_by_ex`]
    /// from cardinalities alone, for the factor-carrying operators whose
    /// operands are never row-materialized. Pages are estimated from the
    /// columnar footprint (a `u64` coordinate plus an `f64` measure per
    /// present cell — the same 16 bytes/row the row-major accounting
    /// charges).
    pub(crate) fn record_factor_op(
        &mut self,
        kind: SpanKind,
        rows_in: &[u64],
        rows_out: u64,
        arity: usize,
        repr: OpRepr,
    ) {
        const CELL_BYTES: u64 = 16;
        const PAGE_BYTES: u64 = 8192;
        let pages = |rows: u64| (rows * CELL_BYTES).div_ceil(PAGE_BYTES).max(1);
        let total_in: u64 = rows_in.iter().sum();
        for &rows in rows_in {
            self.stats.pages_io += pages(rows);
        }
        self.stats.rows_processed += total_in + rows_out;
        self.stats.pages_io += pages(rows_out);
        self.stats.max_intermediate_rows = self.stats.max_intermediate_rows.max(rows_out);
        match kind {
            SpanKind::Join => {
                self.stats.joins += 1;
                match repr {
                    OpRepr::Rows => {}
                    OpRepr::Sparse => self.stats.sparse_joins += 1,
                    OpRepr::Dense => self.stats.dense_joins += 1,
                }
            }
            SpanKind::GroupBy => {
                self.stats.group_bys += 1;
                match repr {
                    OpRepr::Rows => {}
                    OpRepr::Sparse => self.stats.sparse_group_bys += 1,
                    OpRepr::Dense => self.stats.dense_group_bys += 1,
                }
            }
            _ => {}
        }
        if self.trace.enabled() {
            let cells = rows_out * (arity as u64 + 1);
            self.trace.record_op(kind, total_in, rows_out, cells, repr);
        }
    }

    /// Feed one operator's cardinalities to the span collector: fills the
    /// interpreter's open span for this operator, or attaches a leaf span
    /// for ad-hoc operator calls (the inference layer).
    fn trace_op(
        &mut self,
        kind: SpanKind,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
        repr: OpRepr,
    ) {
        if !self.trace.enabled() {
            return;
        }
        let rows_in: u64 = inputs.iter().map(|r| r.len() as u64).sum();
        let rows_out = output.len() as u64;
        let cells = rows_out * (output.schema().arity() as u64 + 1);
        self.trace.record_op(kind, rows_in, rows_out, cells, repr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_storage::{Catalog, Schema};

    fn rel() -> FunctionalRelation {
        let mut c = Catalog::new();
        let a = c.add_var("a", 2).unwrap();
        FunctionalRelation::from_rows(
            "r",
            Schema::new(vec![a]).unwrap(),
            [(vec![0], 1.0), (vec![1], 2.0)],
        )
        .unwrap()
    }

    #[test]
    fn unlimited_context_has_no_budget() {
        let cx = ExecContext::new(SemiringKind::SumProduct);
        assert!(cx.budget().is_none());
        assert!(ExecContext::with_limits(SemiringKind::SumProduct, ExecLimits::none())
            .budget()
            .is_none());
    }

    #[test]
    fn with_limits_owns_a_budget() {
        let cx = ExecContext::with_limits(
            SemiringKind::SumProduct,
            ExecLimits::none().with_max_total_cells(10),
        );
        assert!(cx.budget().is_some());
    }

    #[test]
    fn repeated_scans_charge_once() {
        let mut cx = ExecContext::with_limits(
            SemiringKind::SumProduct,
            ExecLimits::none().with_max_total_cells(1000),
        );
        let r = rel();
        cx.record_scan("r", &r).unwrap();
        let after_first = cx.budget().unwrap().cells_used();
        assert_eq!(after_first, 4); // 2 rows × (1 var + measure)
        cx.record_scan("r", &r).unwrap();
        assert_eq!(cx.budget().unwrap().cells_used(), after_first);
        // A different relation is charged.
        cx.record_scan("other", &r).unwrap();
        assert_eq!(cx.budget().unwrap().cells_used(), 2 * after_first);
        // Stats still count every scan.
        assert_eq!(cx.stats().rows_scanned, 6);
    }

    #[test]
    fn take_stats_resets() {
        let mut cx = ExecContext::new(SemiringKind::SumProduct);
        let r = rel();
        cx.record_scan("r", &r).unwrap();
        let stats = cx.take_stats();
        assert_eq!(stats.rows_scanned, 2);
        assert_eq!(cx.stats().rows_scanned, 0);
    }

    #[test]
    fn fork_shares_budget_and_scan_ledger() {
        let mut cx = ExecContext::with_limits(
            SemiringKind::SumProduct,
            ExecLimits::none().with_max_total_cells(1000).with_threads(4),
        );
        let r = rel();
        let mut child = cx.fork();
        child.record_scan("r", &r).unwrap();
        // The child charged the shared budget and the shared ledger.
        assert_eq!(cx.budget().unwrap().cells_used(), 4);
        cx.record_scan("r", &r).unwrap();
        assert_eq!(cx.budget().unwrap().cells_used(), 4, "still charged once");
        // Stats are per-context until absorbed.
        assert_eq!(cx.stats().rows_scanned, 2);
        cx.absorb(child.take_stats());
        assert_eq!(cx.stats().rows_scanned, 4);
    }

    #[test]
    fn worker_tokens_bound_fan_out() {
        let cx = ExecContext::new(SemiringKind::SumProduct).with_threads(3);
        assert_eq!(cx.threads(), 3);
        let child = cx.fork();
        assert!(cx.try_acquire_worker());
        assert!(child.try_acquire_worker(), "pool is shared with forks");
        assert!(!cx.try_acquire_worker(), "threads - 1 tokens total");
        child.release_worker();
        assert!(cx.try_acquire_worker());

        let single = ExecContext::new(SemiringKind::SumProduct).with_threads(1);
        assert!(!single.try_acquire_worker());
    }
}
