//! The single execution context threaded through every physical operator.
//!
//! [`ExecContext`] owns the pieces that used to be scattered across the
//! executor and the `*_budgeted` operator variants: the active semiring,
//! the optional [`ExecBudget`] (row/cell caps, deadline, cancellation),
//! the mutable [`ExecStats`] work counters, and the fault-injection hooks
//! ([`crate::fault`]). Every operator in [`crate::ops`],
//! [`crate::sort_ops`], and [`crate::partitioned`] takes
//! `&mut ExecContext` as its first argument, so budgets, stats, and
//! failpoints apply uniformly whether an operator is reached through the
//! [`Executor`](crate::Executor), the inference layer (Belief
//! Propagation, VE-cache, Bayesian networks), or a direct call.
//!
//! A context either owns its budget (built from [`ExecLimits`] by
//! [`ExecContext::with_limits`] — the inference entry points do this) or
//! borrows one owned elsewhere ([`ExecContext::with_budget`] — the
//! executor does this so the budget's cell counter outlives individual
//! executions and callers can inspect it afterwards).

use std::collections::HashSet;

use mpf_semiring::SemiringKind;
use mpf_storage::FunctionalRelation;

use crate::limits::{ExecBudget, ExecLimits, OpGuard};
use crate::{fault, ExecStats, Result};

/// Owned-or-borrowed budget slot.
#[derive(Debug)]
enum BudgetSlot<'b> {
    /// No limits configured: every budget operation is a no-op.
    None,
    /// The context owns the budget (inference entry points).
    Owned(ExecBudget),
    /// The budget lives in the executor (or another caller) so its
    /// counters survive the context.
    Borrowed(&'b ExecBudget),
}

/// Execution state threaded through every physical operator: semiring,
/// optional resource budget, work counters, and fault-injection hooks.
#[derive(Debug)]
pub struct ExecContext<'b> {
    semiring: SemiringKind,
    budget: BudgetSlot<'b>,
    stats: ExecStats,
    /// Base relations already charged to the budget as materialized
    /// input, so repeated scans of the same relation are charged once.
    charged_scans: HashSet<String>,
}

impl<'b> ExecContext<'b> {
    /// An unlimited context: no budget, fresh stats.
    pub fn new(semiring: SemiringKind) -> ExecContext<'static> {
        ExecContext {
            semiring,
            budget: BudgetSlot::None,
            stats: ExecStats::default(),
            charged_scans: HashSet::new(),
        }
    }

    /// A context enforcing `limits` through an owned budget. Unlimited
    /// `limits` allocate no budget (zero per-row overhead); a deadline's
    /// wall clock starts now.
    pub fn with_limits(semiring: SemiringKind, limits: ExecLimits) -> ExecContext<'static> {
        ExecContext {
            semiring,
            budget: if limits.is_unlimited() {
                BudgetSlot::None
            } else {
                BudgetSlot::Owned(ExecBudget::new(limits))
            },
            stats: ExecStats::default(),
            charged_scans: HashSet::new(),
        }
    }

    /// A context charging a budget owned by the caller (the executor's
    /// per-query budget, whose counters outlive this context).
    pub fn with_budget(
        semiring: SemiringKind,
        budget: Option<&'b ExecBudget>,
    ) -> ExecContext<'b> {
        ExecContext {
            semiring,
            budget: match budget {
                Some(b) => BudgetSlot::Borrowed(b),
                None => BudgetSlot::None,
            },
            stats: ExecStats::default(),
            charged_scans: HashSet::new(),
        }
    }

    /// The active semiring.
    pub fn semiring(&self) -> SemiringKind {
        self.semiring
    }

    /// The budget being charged, if limits are configured.
    pub fn budget(&self) -> Option<&ExecBudget> {
        match &self.budget {
            BudgetSlot::None => None,
            BudgetSlot::Owned(b) => Some(b),
            BudgetSlot::Borrowed(b) => Some(b),
        }
    }

    /// The work counters accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Take the accumulated work counters, resetting them to zero.
    pub fn take_stats(&mut self) -> ExecStats {
        std::mem::take(&mut self.stats)
    }

    /// An [`OpGuard`] for one operator emitting rows of `arity` variables.
    pub fn guard(&self, arity: usize) -> OpGuard<'_> {
        OpGuard::new(self.budget(), arity)
    }

    /// Fault-injection hook: fail if the named site is armed (a no-op
    /// without the `fault-injection` feature).
    pub fn fault(&self, site: &str) -> Result<()> {
        fault::check(site)
    }

    /// Poll the deadline and cancellation token, if any.
    pub fn checkpoint(&self) -> Result<()> {
        match self.budget() {
            Some(b) => b.checkpoint(),
            None => Ok(()),
        }
    }

    /// Record a scan of base relation `name`: counts rows/pages in the
    /// stats on every scan, but charges the budget only the first time
    /// each relation is scanned (scans borrow the stored relation — there
    /// is no per-scan clone to charge).
    pub fn record_scan(&mut self, name: &str, rel: &FunctionalRelation) -> Result<()> {
        self.stats.rows_scanned += rel.len() as u64;
        self.stats.pages_io += rel.estimated_pages();
        if let Some(budget) = self.budget() {
            budget.checkpoint()?;
        }
        if !self.charged_scans.contains(name) {
            if let Some(budget) = self.budget() {
                budget.charge_output(rel.len() as u64, rel.schema().arity())?;
            }
            self.charged_scans.insert(name.to_string());
        }
        Ok(())
    }

    /// Account one operator's input/output cardinalities in the stats
    /// (rows processed, simulated page IO, high-water intermediate size).
    pub(crate) fn account(
        &mut self,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
    ) {
        for rel in inputs {
            self.stats.rows_processed += rel.len() as u64;
            self.stats.pages_io += rel.estimated_pages();
        }
        self.stats.rows_processed += output.len() as u64;
        self.stats.pages_io += output.estimated_pages();
        self.stats.max_intermediate_rows =
            self.stats.max_intermediate_rows.max(output.len() as u64);
    }

    /// Account a join operator (any algorithm).
    pub(crate) fn record_join(
        &mut self,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
    ) {
        self.account(inputs, output);
        self.stats.joins += 1;
    }

    /// Account a group-by operator (any algorithm).
    pub(crate) fn record_group_by(
        &mut self,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
    ) {
        self.account(inputs, output);
        self.stats.group_bys += 1;
    }

    /// Account a selection operator.
    pub(crate) fn record_select(
        &mut self,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
    ) {
        self.account(inputs, output);
        self.stats.selects += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_storage::{Catalog, Schema};

    fn rel() -> FunctionalRelation {
        let mut c = Catalog::new();
        let a = c.add_var("a", 2).unwrap();
        FunctionalRelation::from_rows(
            "r",
            Schema::new(vec![a]).unwrap(),
            [(vec![0], 1.0), (vec![1], 2.0)],
        )
        .unwrap()
    }

    #[test]
    fn unlimited_context_has_no_budget() {
        let cx = ExecContext::new(SemiringKind::SumProduct);
        assert!(cx.budget().is_none());
        assert!(ExecContext::with_limits(SemiringKind::SumProduct, ExecLimits::none())
            .budget()
            .is_none());
    }

    #[test]
    fn with_limits_owns_a_budget() {
        let cx = ExecContext::with_limits(
            SemiringKind::SumProduct,
            ExecLimits::none().with_max_total_cells(10),
        );
        assert!(cx.budget().is_some());
    }

    #[test]
    fn repeated_scans_charge_once() {
        let mut cx = ExecContext::with_limits(
            SemiringKind::SumProduct,
            ExecLimits::none().with_max_total_cells(1000),
        );
        let r = rel();
        cx.record_scan("r", &r).unwrap();
        let after_first = cx.budget().unwrap().cells_used();
        assert_eq!(after_first, 4); // 2 rows × (1 var + measure)
        cx.record_scan("r", &r).unwrap();
        assert_eq!(cx.budget().unwrap().cells_used(), after_first);
        // A different relation is charged.
        cx.record_scan("other", &r).unwrap();
        assert_eq!(cx.budget().unwrap().cells_used(), 2 * after_first);
        // Stats still count every scan.
        assert_eq!(cx.stats().rows_scanned, 6);
    }

    #[test]
    fn take_stats_resets() {
        let mut cx = ExecContext::new(SemiringKind::SumProduct);
        let r = rel();
        cx.record_scan("r", &r).unwrap();
        let stats = cx.take_stats();
        assert_eq!(stats.rows_scanned, 2);
        assert_eq!(cx.stats().rows_scanned, 0);
    }
}
