use mpf_storage::{StorageError, VarId};

/// Errors raised while building or executing plans.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// Underlying storage error.
    Storage(StorageError),
    /// A plan references a relation the provider does not hold.
    UnknownRelation(String),
    /// A `GroupBy` lists a variable not produced by its input.
    GroupVarNotInInput(VarId),
    /// A selection predicate references a variable not produced by its input.
    SelectVarNotInInput(VarId),
    /// The update semijoin requires a semiring with division.
    NoDivision,
}

impl From<StorageError> for AlgebraError {
    fn from(e: StorageError) -> Self {
        AlgebraError::Storage(e)
    }
}

impl std::fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgebraError::Storage(e) => write!(f, "storage error: {e}"),
            AlgebraError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            AlgebraError::GroupVarNotInInput(v) => {
                write!(f, "group-by variable {v} is not in the operator input")
            }
            AlgebraError::SelectVarNotInInput(v) => {
                write!(f, "selection variable {v} is not in the operator input")
            }
            AlgebraError::NoDivision => write!(
                f,
                "the update semijoin requires a semiring with a multiplicative inverse"
            ),
        }
    }
}

impl std::error::Error for AlgebraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgebraError::Storage(e) => Some(e),
            _ => None,
        }
    }
}
