use mpf_storage::{StorageError, VarId};

use crate::limits::ResourceKind;

/// Errors raised while building or executing plans.
#[derive(Debug, Clone, PartialEq)]
pub enum AlgebraError {
    /// Underlying storage error.
    Storage(StorageError),
    /// A plan references a relation the provider does not hold.
    UnknownRelation(String),
    /// A `GroupBy` lists a variable not produced by its input.
    GroupVarNotInInput(VarId),
    /// A selection predicate references a variable not produced by its input.
    SelectVarNotInInput(VarId),
    /// The update semijoin requires a semiring with division.
    NoDivision,
    /// An operator that requires at least one input relation received none.
    EmptyInput(&'static str),
    /// Execution exceeded a configured [`crate::ExecLimits`] budget.
    ResourceExhausted {
        /// Which budget tripped.
        resource: ResourceKind,
        /// The configured limit.
        limit: u64,
        /// The observed value at the point the limit tripped.
        observed: u64,
    },
    /// Execution was cancelled through a [`crate::CancelToken`].
    Cancelled,
    /// A semiring accumulation produced a measure that is invalid for the
    /// semiring (NaN, or an infinity that is not that semiring's identity).
    NonFiniteMeasure {
        /// The operator that produced the value.
        op: &'static str,
        /// The offending measure.
        value: f64,
    },
    /// A plan tree is nested deeper than [`crate::MAX_PLAN_DEPTH`];
    /// evaluating or schema-checking it would risk a stack overflow.
    PlanTooDeep {
        /// The plan's nesting depth.
        depth: usize,
        /// The maximum supported depth.
        max: usize,
    },
    /// A deterministic failpoint fired (only with the `fault-injection`
    /// feature; named after the registered fault site).
    FaultInjected(String),
    /// An invariant the executor relies on was violated (e.g. a worker
    /// thread panicked). Indicates a bug rather than a user error.
    Internal(String),
}

impl From<StorageError> for AlgebraError {
    fn from(e: StorageError) -> Self {
        AlgebraError::Storage(e)
    }
}

impl std::fmt::Display for AlgebraError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlgebraError::Storage(e) => write!(f, "storage error: {e}"),
            AlgebraError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            AlgebraError::GroupVarNotInInput(v) => {
                write!(f, "group-by variable {v} is not in the operator input")
            }
            AlgebraError::SelectVarNotInInput(v) => {
                write!(f, "selection variable {v} is not in the operator input")
            }
            AlgebraError::NoDivision => write!(
                f,
                "the update semijoin requires a semiring with a multiplicative inverse"
            ),
            AlgebraError::EmptyInput(op) => {
                write!(f, "operator `{op}` requires at least one input relation")
            }
            AlgebraError::ResourceExhausted {
                resource,
                limit,
                observed,
            } => {
                let unit = resource.unit();
                write!(
                    f,
                    "execution exceeded the {resource} budget: \
                     limit {limit} {unit}, consumed {observed} {unit}"
                )
            }
            AlgebraError::Cancelled => write!(f, "execution cancelled"),
            AlgebraError::NonFiniteMeasure { op, value } => write!(
                f,
                "operator `{op}` produced a measure ({value}) that is invalid for the semiring"
            ),
            AlgebraError::PlanTooDeep { depth, max } => write!(
                f,
                "plan is nested {depth} operators deep, beyond the {max}-level limit"
            ),
            AlgebraError::FaultInjected(site) => {
                write!(f, "injected fault at `{site}`")
            }
            AlgebraError::Internal(msg) => write!(f, "internal executor error: {msg}"),
        }
    }
}

impl std::error::Error for AlgebraError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AlgebraError::Storage(e) => Some(e),
            _ => None,
        }
    }
}
