//! A lightweight metrics registry: monotonic counters and latency
//! histograms with JSON export.
//!
//! The registry is deliberately tiny — no external metrics crate, no
//! background threads — because its consumers are in-process: the engine's
//! query path feeds it (queries served, fallback retries, per-strategy
//! serve counts, optimize/execute latencies) so `Answer::served_by` and
//! retry behavior are quantified over a workload, and the `mpf-bench`
//! binaries feed it per-phase timings that land next to the benchmark
//! JSON. All methods take `&self` (interior mutability), so one registry
//! can be shared behind an `Arc` across threads.
//!
//! Histograms are logarithmic: bucket `i` counts samples in
//! `[2^i, 2^{i+1})` microseconds, which spans sub-microsecond operator
//! calls to multi-minute builds in 64 buckets with bounded memory.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Number of log2 buckets (covers `[1us, 2^63 us)`).
const BUCKETS: usize = 64;

/// A latency histogram with power-of-two microsecond buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples, microseconds.
    pub sum_us: u64,
    /// Smallest sample, microseconds.
    pub min_us: u64,
    /// Largest sample, microseconds.
    pub max_us: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl Histogram {
    fn observe_us(&mut self, us: u64) {
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        // Bucket i covers [2^i, 2^{i+1}); 0us lands in bucket 0.
        let idx = (63 - us.max(1).leading_zeros()) as usize;
        self.buckets[idx.min(BUCKETS - 1)] += 1;
    }

    /// Mean latency in microseconds (0 with no samples).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(upper_bound_us, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << (i + 1).min(63), c))
            .collect()
    }
}

/// Monotonic counters + latency histograms, exported as JSON.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, u64>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increment a counter by 1 (created at 0 on first touch).
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Increment a counter by `n`.
    pub fn add(&self, name: &str, n: u64) {
        let mut c = lock(&self.counters);
        *c.entry(name.to_string()).or_insert(0) += n;
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        lock(&self.counters).get(name).copied().unwrap_or(0)
    }

    /// Set a counter to an absolute value — a last-writer-wins gauge for
    /// level metrics (resident cache bytes, entry counts) that go down as
    /// well as up. Shares the counter namespace and JSON export.
    pub fn set(&self, name: &str, value: u64) {
        let mut c = lock(&self.counters);
        c.insert(name.to_string(), value);
    }

    /// Record a latency sample.
    pub fn observe(&self, name: &str, latency: Duration) {
        self.observe_us(name, latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record a latency sample in microseconds.
    pub fn observe_us(&self, name: &str, us: u64) {
        let mut h = lock(&self.histograms);
        h.entry(name.to_string()).or_default().observe_us(us);
    }

    /// Snapshot of a histogram (None if never observed).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        lock(&self.histograms).get(name).cloned()
    }

    /// Export every counter and histogram as a JSON object.
    pub fn to_json(&self) -> String {
        let counters = lock(&self.counters).clone();
        let histograms = lock(&self.histograms).clone();
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let buckets: Vec<String> = h
                .nonzero_buckets()
                .iter()
                .map(|(ub, c)| format!("[{ub},{c}]"))
                .collect();
            out.push_str(&format!(
                "\"{k}\":{{\"count\":{},\"sum_us\":{},\"min_us\":{},\"max_us\":{},\"mean_us\":{:.1},\"buckets\":[{}]}}",
                h.count,
                h.sum_us,
                if h.count == 0 { 0 } else { h.min_us },
                h.max_us,
                h.mean_us(),
                buckets.join(",")
            ));
        }
        out.push_str("}}");
        out
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.inc("queries");
        m.add("queries", 2);
        assert_eq!(m.counter("queries"), 3);
        assert_eq!(m.counter("untouched"), 0);
    }

    #[test]
    fn gauges_overwrite_instead_of_accumulating() {
        let m = MetricsRegistry::new();
        m.set("bytes", 4096);
        m.set("bytes", 1024); // down as well as up
        assert_eq!(m.counter("bytes"), 1024);
        assert!(m.to_json().contains("\"bytes\":1024"));
    }

    #[test]
    fn histograms_bucket_logarithmically() {
        let m = MetricsRegistry::new();
        m.observe_us("lat", 1);
        m.observe_us("lat", 3);
        m.observe_us("lat", 1000);
        m.observe_us("lat", 0); // clamps into the first bucket
        let h = m.histogram("lat").unwrap();
        assert_eq!(h.count, 4);
        assert_eq!(h.min_us, 0);
        assert_eq!(h.max_us, 1000);
        let buckets = h.nonzero_buckets();
        // 1 and 0 -> [1,2); 3 -> [2,4); 1000 -> [512,1024).
        assert_eq!(buckets, vec![(2, 2), (4, 1), (1024, 1)]);
        assert!(h.mean_us() > 0.0);
    }

    #[test]
    fn json_export_is_stable_and_complete() {
        let m = MetricsRegistry::new();
        m.inc("b");
        m.inc("a");
        m.observe(&String::from("lat"), Duration::from_micros(5));
        let json = m.to_json();
        // BTreeMap order: alphabetical, so the export is deterministic.
        assert!(json.find("\"a\":1").unwrap() < json.find("\"b\":1").unwrap());
        assert!(json.contains("\"lat\":{\"count\":1"));
        assert!(json.contains("\"buckets\":[[8,1]]"));
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(MetricsRegistry::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..100 {
                        m.inc("n");
                    }
                });
            }
        });
        assert_eq!(m.counter("n"), 400);
    }
}
