//! Per-operator execution tracing.
//!
//! When an [`ExecContext`](crate::ExecContext) runs with
//! [`TraceLevel::Spans`], every physical operator records a [`TraceSpan`]
//! — operator kind, input/output rows, cells charged, wall time, and (for
//! the partitioned operators) partition and worker counts — into a
//! per-query [`TraceTree`] mirroring the executed plan. The engine
//! surfaces the tree on `Answer::trace` and pretty-prints it next to the
//! optimizer's cardinality estimates (`Database::explain_analyze`), which
//! is what makes cost-model drift visible operator-by-operator: the
//! paper's CS/CS+/VE/VE+ strategies differ exactly in the per-operator
//! join/group-by sizes induced by the elimination order.
//!
//! Tracing is structured as a span *stack* owned by the context:
//!
//! * the interpreter opens a span per plan node before evaluating it and
//!   closes it afterwards (inclusive wall time, PostgreSQL
//!   `EXPLAIN ANALYZE` convention); the operator's own
//!   `record_join`/`record_group_by`/`record_select`/`record_scan`
//!   accounting call fills the open span's row counts;
//! * inference entry points (`VeCache::build_in`,
//!   `JunctionTree::populate_in`, `bp::calibrate_in`) open a *phase* span;
//!   operator accounting calls with no fillable open span attach leaf
//!   spans, so ad-hoc operator sequences trace too (without per-leaf
//!   timing — only spans opened explicitly carry wall time);
//! * forked worker contexts collect into their own tree; the parent
//!   grafts the workers' finished spans in deterministic (plan/chunk)
//!   order via `ExecContext::absorb_trace`, so the tree shape is
//!   identical at every thread count.
//!
//! At [`TraceLevel::Off`] (the default) every hook is a single branch on
//! the level — no allocation, no clock reads.

use std::time::{Duration, Instant};

/// How much execution tracing a context records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// No tracing: every trace hook is a no-op (the default).
    #[default]
    Off,
    /// Record a [`TraceSpan`] per physical operator into a [`TraceTree`].
    Spans,
}

/// The kind of operator (or grouping phase) a span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// Base-relation scan.
    Scan,
    /// Equality selection.
    Select,
    /// Product join (any algorithm).
    Join,
    /// Marginalization / group-by (any algorithm).
    GroupBy,
    /// A named phase grouping child operator spans (e.g.
    /// `vecache::build`); never filled by operator accounting.
    Phase,
}

impl SpanKind {
    /// Stable lower-case name (used in JSON export and default labels).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Scan => "scan",
            SpanKind::Select => "select",
            SpanKind::Join => "join",
            SpanKind::GroupBy => "group_by",
            SpanKind::Phase => "phase",
        }
    }
}

/// The storage representation an operator actually ran on — the span
/// annotation that distinguishes the hash path (`Rows`) from the sorted
/// coordinate tensor (`Sparse`) and the odometer grid (`Dense`) in
/// traces and `explain_analyze` output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpRepr {
    /// Row-major hash operators (the general path).
    #[default]
    Rows,
    /// Sparse-tensor kernels (sorted-merge join / coordinate collapse).
    Sparse,
    /// Dense odometer kernels.
    Dense,
}

impl OpRepr {
    /// Stable lower-case name (`rows`/`sparse`/`dense`), matching
    /// `Factor::repr_name` in the storage layer.
    pub fn name(self) -> &'static str {
        match self {
            OpRepr::Rows => "rows",
            OpRepr::Sparse => "sparse",
            OpRepr::Dense => "dense",
        }
    }
}

/// What a span records when it is opened (before the operator runs).
#[derive(Debug, Clone)]
pub struct SpanDesc {
    /// Operator kind.
    pub kind: SpanKind,
    /// Display label (e.g. `Scan r1`, `ProductJoin (Parallel)`).
    pub label: String,
    /// Partition count, for partitioned operators.
    pub partitions: Option<usize>,
    /// Worker-thread count, for parallel operators.
    pub workers: Option<usize>,
    /// Pre-marks the span's representation. Normally left [`OpRepr::Rows`]
    /// — execution sets the annotation on the span when a sparse or dense
    /// kernel actually records into it, so traces distinguish
    /// planned-representation from ran-representation.
    pub repr: OpRepr,
}

impl SpanDesc {
    /// A phase span (groups child operator spans under a name).
    pub fn phase(label: impl Into<String>) -> SpanDesc {
        SpanDesc {
            kind: SpanKind::Phase,
            label: label.into(),
            partitions: None,
            workers: None,
            repr: OpRepr::Rows,
        }
    }

    /// An operator span with no partition/worker annotations.
    pub fn op(kind: SpanKind, label: impl Into<String>) -> SpanDesc {
        SpanDesc {
            kind,
            label: label.into(),
            partitions: None,
            workers: None,
            repr: OpRepr::Rows,
        }
    }
}

/// One operator's recorded execution.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Operator kind.
    pub kind: SpanKind,
    /// Display label.
    pub label: String,
    /// Rows entering the operator (sum over inputs; 0 for scans).
    pub rows_in: u64,
    /// Rows the operator produced.
    pub rows_out: u64,
    /// Cells charged for the output (`rows_out × (arity + 1)`), the unit
    /// [`crate::ExecBudget`] meters.
    pub cells: u64,
    /// Inclusive wall time (children included), like PostgreSQL's
    /// `EXPLAIN ANALYZE` actual time. Zero for leaf spans attached by
    /// operator accounting outside an explicitly opened span.
    pub elapsed: Duration,
    /// Partition count, for partitioned operators.
    pub partitions: Option<usize>,
    /// Worker-thread count, for parallel operators.
    pub workers: Option<usize>,
    /// The storage representation the operator ran on.
    pub repr: OpRepr,
    /// The kernel inner-loop mode (`"scalar"`/`"chunked"`) a
    /// monomorphized kernel ran with; `None` for operators that never
    /// touched a monomorphized kernel (hash path, scans, phases).
    pub kernel: Option<&'static str>,
    /// True when the span is a fused join→marginalize contraction (one
    /// operator accounting as a join *and* a group-by).
    pub fused: bool,
    /// Optimizer-estimated output rows, filled by the engine's
    /// estimate-annotation pass (`None` inside bare algebra runs).
    pub est_rows: Option<f64>,
    /// The error the operator failed with, when it did (records the
    /// fault site when fault injection tripped it).
    pub fault: Option<String>,
    /// Child spans in execution (plan) order.
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    fn new(desc: SpanDesc) -> TraceSpan {
        TraceSpan {
            kind: desc.kind,
            label: desc.label,
            rows_in: 0,
            rows_out: 0,
            cells: 0,
            elapsed: Duration::ZERO,
            partitions: desc.partitions,
            workers: desc.workers,
            repr: desc.repr,
            kernel: None,
            fused: false,
            est_rows: None,
            fault: None,
            children: Vec::new(),
        }
    }

    /// This span plus all descendants.
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(TraceSpan::span_count).sum::<usize>()
    }

    /// Visit this span and all descendants, pre-order.
    pub fn for_each(&self, f: &mut impl FnMut(&TraceSpan)) {
        f(self);
        for c in &self.children {
            c.for_each(f);
        }
    }

    /// Visit this span and all descendants mutably, pre-order.
    pub fn for_each_mut(&mut self, f: &mut impl FnMut(&mut TraceSpan)) {
        f(self);
        for c in &mut self.children {
            c.for_each_mut(f);
        }
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        let indent = "  ".repeat(depth);
        out.push_str(&format!("{indent}{}", self.label));
        if self.kind == SpanKind::Phase {
            out.push_str(&format!("  (time={:.1?})", self.elapsed));
        } else {
            out.push_str("  (");
            if let Some(est) = self.est_rows {
                out.push_str(&format!("est rows={est:.1}, "));
            }
            out.push_str(&format!(
                "rows={}, cells={}, time={:.1?}",
                self.rows_out, self.cells, self.elapsed
            ));
            if let Some(p) = self.partitions {
                out.push_str(&format!(", partitions={p}"));
            }
            if let Some(w) = self.workers {
                out.push_str(&format!(", workers={w}"));
            }
            out.push_str(&format!(", repr={}", self.repr.name()));
            if let Some(k) = self.kernel {
                out.push_str(&format!(", kernel={k}"));
            }
            if self.fused {
                out.push_str(", fused=true");
            }
            out.push(')');
        }
        if let Some(fault) = &self.fault {
            out.push_str(&format!("  [failed: {fault}]"));
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }

    fn json_into(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"kind\":\"{}\",\"label\":{},\"rows_in\":{},\"rows_out\":{},\"cells\":{},\"elapsed_us\":{}",
            self.kind.name(),
            json_string(&self.label),
            self.rows_in,
            self.rows_out,
            self.cells,
            self.elapsed.as_micros()
        ));
        if let Some(p) = self.partitions {
            out.push_str(&format!(",\"partitions\":{p}"));
        }
        if let Some(w) = self.workers {
            out.push_str(&format!(",\"workers\":{w}"));
        }
        if self.kind != SpanKind::Phase {
            out.push_str(&format!(",\"repr\":\"{}\"", self.repr.name()));
        }
        if let Some(k) = self.kernel {
            out.push_str(&format!(",\"kernel\":\"{k}\""));
        }
        if self.fused {
            out.push_str(",\"fused\":true");
        }
        if let Some(e) = self.est_rows {
            if e.is_finite() {
                out.push_str(&format!(",\"est_rows\":{e:.3}"));
            }
        }
        if let Some(f) = &self.fault {
            out.push_str(&format!(",\"fault\":{}", json_string(f)));
        }
        out.push_str(",\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.json_into(out);
        }
        out.push_str("]}");
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A per-query trace: the forest of finished root spans (a single plan
/// execution yields one root; a phase-structured build may yield several).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceTree {
    /// Finished top-level spans, in execution order.
    pub roots: Vec<TraceSpan>,
}

impl TraceTree {
    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Total number of spans in the tree.
    pub fn span_count(&self) -> usize {
        self.roots.iter().map(TraceSpan::span_count).sum()
    }

    /// Visit every span, pre-order.
    pub fn for_each(&self, f: &mut impl FnMut(&TraceSpan)) {
        for r in &self.roots {
            r.for_each(f);
        }
    }

    /// Visit every span mutably, pre-order.
    pub fn for_each_mut(&mut self, f: &mut impl FnMut(&mut TraceSpan)) {
        for r in &mut self.roots {
            r.for_each_mut(f);
        }
    }

    /// Render as an indented tree with per-span actuals.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.roots {
            r.render_into(&mut out, 0);
        }
        out
    }

    /// Export as JSON (hand-rolled; the tree is the artifact CI uploads).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"spans\":[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            r.json_into(&mut out);
        }
        out.push_str("]}");
        out
    }
}

/// The span stack a context collects into. All methods are no-ops at
/// [`TraceLevel::Off`].
#[derive(Debug)]
pub(crate) struct TraceCollector {
    level: TraceLevel,
    stack: Vec<OpenSpan>,
    roots: Vec<TraceSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    span: TraceSpan,
    /// Whether operator accounting already filled the row counts.
    filled: bool,
    start: Instant,
}

impl TraceCollector {
    pub(crate) fn new(level: TraceLevel) -> TraceCollector {
        TraceCollector {
            level,
            stack: Vec::new(),
            roots: Vec::new(),
        }
    }

    pub(crate) fn level(&self) -> TraceLevel {
        self.level
    }

    pub(crate) fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.level != TraceLevel::Off
    }

    /// Open a span; `desc` is only evaluated when tracing is on.
    pub(crate) fn open(&mut self, desc: impl FnOnce() -> SpanDesc) {
        if !self.enabled() {
            return;
        }
        let desc = desc();
        // Phase spans are never filled by operator accounting; operator
        // spans expect exactly one fill from the operator they wrap.
        let filled = desc.kind == SpanKind::Phase;
        self.stack.push(OpenSpan {
            span: TraceSpan::new(desc),
            filled,
            start: Instant::now(),
        });
    }

    /// Close the innermost open span, attaching it to its parent (or the
    /// roots). `fault` is only evaluated when tracing is on.
    pub(crate) fn close(&mut self, fault: impl FnOnce() -> Option<String>) {
        if !self.enabled() {
            return;
        }
        let Some(mut open) = self.stack.pop() else {
            return;
        };
        open.span.elapsed = open.start.elapsed();
        open.span.fault = fault();
        self.attach(open.span);
    }

    /// Operator accounting: fill the innermost unfilled open span of the
    /// same kind, or attach a leaf span (ad-hoc operator calls outside
    /// the interpreter). `repr` marks the storage representation the
    /// operator actually ran on (a sparse/dense mark overrides the
    /// span's planned annotation; `Rows` leaves a pre-mark in place).
    pub(crate) fn record_op(
        &mut self,
        kind: SpanKind,
        rows_in: u64,
        rows_out: u64,
        cells: u64,
        repr: OpRepr,
    ) {
        if !self.enabled() {
            return;
        }
        if let Some(top) = self.stack.last_mut() {
            if !top.filled && top.span.kind == kind {
                top.span.rows_in = rows_in;
                top.span.rows_out = rows_out;
                top.span.cells = cells;
                if repr != OpRepr::Rows {
                    top.span.repr = repr;
                }
                top.filled = true;
                return;
            }
        }
        let mut leaf = TraceSpan::new(SpanDesc::op(kind, kind.name()));
        leaf.rows_in = rows_in;
        leaf.rows_out = rows_out;
        leaf.cells = cells;
        leaf.repr = repr;
        self.attach(leaf);
    }

    /// Set the partition count of the innermost open span (the Grace join
    /// re-derives its count from the actual build side at run time).
    pub(crate) fn set_partitions(&mut self, partitions: usize) {
        if !self.enabled() {
            return;
        }
        if let Some(top) = self.stack.last_mut() {
            top.span.partitions = Some(partitions);
        }
    }

    /// Tag the active span with the kernel inner-loop mode: the innermost
    /// open span when one exists (interpreter path), else the span most
    /// recently attached at the current level (ad-hoc operator calls,
    /// whose accounting attaches a leaf just before this runs).
    pub(crate) fn set_kernel(&mut self, kernel: &'static str) {
        if !self.enabled() {
            return;
        }
        if let Some(span) = self.active_span() {
            span.kernel = Some(kernel);
        }
    }

    /// Mark the active span as a fused join→marginalize contraction (same
    /// targeting rule as [`TraceCollector::set_kernel`]).
    pub(crate) fn set_fused(&mut self, fused: bool) {
        if !self.enabled() {
            return;
        }
        if let Some(span) = self.active_span() {
            span.fused = fused;
        }
    }

    fn active_span(&mut self) -> Option<&mut TraceSpan> {
        match self.stack.last_mut() {
            // A filled operator span is the operator this tag belongs
            // to; a phase span (or an operator span whose accounting
            // attached a leaf instead of filling) routes to the most
            // recently attached child.
            Some(top) => {
                if top.span.kind != SpanKind::Phase && top.filled {
                    Some(&mut top.span)
                } else {
                    top.span.children.last_mut()
                }
            }
            None => self.roots.last_mut(),
        }
    }

    /// Graft finished spans from a forked worker context, in call order.
    pub(crate) fn absorb(&mut self, spans: Vec<TraceSpan>) {
        if !self.enabled() || spans.is_empty() {
            return;
        }
        match self.stack.last_mut() {
            Some(top) => top.span.children.extend(spans),
            None => self.roots.extend(spans),
        }
    }

    /// Take the finished tree, resetting the collector (open spans are
    /// discarded — callers close spans on both success and error paths).
    pub(crate) fn take(&mut self) -> TraceTree {
        self.stack.clear();
        TraceTree {
            roots: std::mem::take(&mut self.roots),
        }
    }

    fn attach(&mut self, span: TraceSpan) {
        match self.stack.last_mut() {
            Some(top) => top.span.children.push(span),
            None => self.roots.push(span),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(kind: SpanKind, label: &str) -> SpanDesc {
        SpanDesc::op(kind, label)
    }

    #[test]
    fn off_collects_nothing() {
        let mut c = TraceCollector::new(TraceLevel::Off);
        c.open(|| desc(SpanKind::Join, "j"));
        c.record_op(SpanKind::Join, 4, 2, 6, OpRepr::Rows);
        c.close(|| None);
        assert!(c.take().is_empty());
    }

    #[test]
    fn operator_accounting_fills_the_open_span() {
        let mut c = TraceCollector::new(TraceLevel::Spans);
        c.open(|| desc(SpanKind::Join, "ProductJoin (Hash)"));
        c.open(|| desc(SpanKind::Scan, "Scan r1"));
        c.record_op(SpanKind::Scan, 0, 4, 12, OpRepr::Rows);
        c.close(|| None);
        c.record_op(SpanKind::Join, 8, 16, 64, OpRepr::Rows);
        c.close(|| None);
        let t = c.take();
        assert_eq!(t.span_count(), 2);
        let root = &t.roots[0];
        assert_eq!(root.rows_out, 16);
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].rows_out, 4);
        assert_eq!(root.children[0].cells, 12);
    }

    #[test]
    fn unmatched_accounting_attaches_leaves() {
        let mut c = TraceCollector::new(TraceLevel::Spans);
        c.open(|| SpanDesc::phase("vecache::build"));
        c.record_op(SpanKind::Join, 8, 16, 48, OpRepr::Rows);
        c.record_op(SpanKind::GroupBy, 16, 4, 8, OpRepr::Rows);
        c.close(|| None);
        let t = c.take();
        assert_eq!(t.roots.len(), 1);
        assert_eq!(t.roots[0].kind, SpanKind::Phase);
        assert_eq!(t.roots[0].children.len(), 2);
        assert_eq!(t.roots[0].children[1].kind, SpanKind::GroupBy);
    }

    #[test]
    fn absorb_grafts_into_the_open_span() {
        let mut worker = TraceCollector::new(TraceLevel::Spans);
        worker.record_op(SpanKind::Join, 2, 2, 6, OpRepr::Rows);
        let spans = worker.take().roots;

        let mut c = TraceCollector::new(TraceLevel::Spans);
        c.open(|| desc(SpanKind::Join, "root"));
        c.absorb(spans);
        c.record_op(SpanKind::Join, 4, 4, 12, OpRepr::Rows);
        c.close(|| None);
        let t = c.take();
        assert_eq!(t.roots[0].children.len(), 1);
        assert_eq!(t.roots[0].rows_out, 4);
    }

    #[test]
    fn faults_are_recorded() {
        let mut c = TraceCollector::new(TraceLevel::Spans);
        c.open(|| desc(SpanKind::Join, "j"));
        c.close(|| Some("boom".into()));
        let t = c.take();
        assert_eq!(t.roots[0].fault.as_deref(), Some("boom"));
        assert!(t.render().contains("[failed: boom]"));
    }

    #[test]
    fn json_and_render_are_well_formed() {
        let mut c = TraceCollector::new(TraceLevel::Spans);
        c.open(|| SpanDesc {
            kind: SpanKind::Join,
            label: "ProductJoin (Parallel)".into(),
            partitions: Some(4),
            workers: Some(2),
            repr: OpRepr::Dense,
        });
        c.record_op(SpanKind::Join, 8, 3, 9, OpRepr::Sparse);
        c.close(|| None);
        let t = c.take();
        let json = t.to_json();
        assert!(json.contains("\"partitions\":4"));
        assert!(json.contains("\"workers\":2"));
        assert!(json.contains("\"rows_out\":3"));
        assert!(json.contains("\"repr\":\"sparse\""));
        let text = t.render();
        assert!(text.contains("partitions=4"));
        assert!(text.contains("workers=2"));
        assert!(text.contains("repr=sparse"));
        assert!(json_string("a\"b\\c\n").contains("\\\""));
    }
}
