//! Physical plans: logical plans annotated with operator algorithms.
//!
//! The logical [`Plan`](crate::Plan) fixes *where* joins and group-bys sit;
//! the physical plan additionally fixes *how* each is executed —
//! hash-based or sort-based — which is exactly the degree of freedom the
//! paper points out distinguishes the relational setting from the GDL
//! setting. [`PhysicalPlan::from_logical`] annotates a logical plan with a
//! caller-supplied chooser (the optimizer's cost-based
//! `choose_physical`); [`PhysicalPlan::default_hash`] maps everything to
//! the hash operators, which is what [`Executor`](crate::Executor) does
//! for bare logical plans.

use mpf_storage::{Value, VarId};

use crate::Plan;

/// Join algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Build a hash index on the smaller side, probe with the larger.
    Hash,
    /// Sort both sides on the shared variables and merge.
    SortMerge,
    /// Grace hash join: partition both sides on the shared variables so
    /// each build partition fits the workspace, then join partition-wise
    /// (the spill strategy for disk-resident operands).
    Grace {
        /// Number of partitions.
        partitions: usize,
    },
    /// Parallel partitioned hash join: partition both sides into
    /// cache-sized buckets and join chunks of partition pairs on scoped
    /// worker threads (the worker count is an execution-time knob,
    /// [`crate::ExecLimits::threads`]).
    Parallel {
        /// Number of partitions (decoupled from the worker count; sized
        /// for cache residency by the planner).
        partitions: usize,
    },
    /// Dense odometer-indexed join: both operands are densified onto
    /// their inferred domain grids and the product is a stride-aligned
    /// broadcast multiply ([`crate::dense::join`]). Falls back to the
    /// hash join at runtime if the output grid turns out infeasible.
    Dense,
    /// Sparse-tensor join: both operands become sorted coordinate
    /// tensors and merge on shared-variable coordinate prefixes
    /// ([`crate::sparse::join`]). Falls back to the hash join at runtime
    /// if the coordinate space turns out infeasible or a side is not
    /// functional.
    SparseTensor,
}

impl JoinAlgo {
    /// Short display name (no partition parameter).
    pub fn label(&self) -> &'static str {
        match self {
            JoinAlgo::Hash => "Hash",
            JoinAlgo::SortMerge => "SortMerge",
            JoinAlgo::Grace { .. } => "Grace",
            JoinAlgo::Parallel { .. } => "Parallel",
            JoinAlgo::Dense => "Dense",
            JoinAlgo::SparseTensor => "SparseTensor",
        }
    }
}

/// Aggregation algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggAlgo {
    /// Hash table keyed by the grouping values.
    HashAgg,
    /// Sort on the grouping values and fold runs.
    SortAgg,
    /// Parallel partitioned aggregation: partition on the hash of the
    /// grouping values and aggregate chunks of partitions on scoped
    /// worker threads.
    ParallelAgg {
        /// Number of partitions (decoupled from the worker count).
        partitions: usize,
    },
    /// Dense odometer-indexed marginalization: the input is densified and
    /// each output cell folds its eliminated-variable subgrid in a fixed
    /// index order ([`crate::dense::agg`]). Falls back to the hash
    /// aggregate at runtime if the grid turns out infeasible.
    DenseAgg,
    /// Sparse-tensor marginalization: the input becomes a sorted
    /// coordinate tensor in `[group, eliminated]` axis order and runs of
    /// equal group prefix collapse in one pass
    /// ([`crate::sparse::agg`]). Falls back to the hash aggregate at
    /// runtime on infeasibility.
    SparseAgg,
}

impl AggAlgo {
    /// Short display name (no partition parameter).
    pub fn label(&self) -> &'static str {
        match self {
            AggAlgo::HashAgg => "HashAgg",
            AggAlgo::SortAgg => "SortAgg",
            AggAlgo::ParallelAgg { .. } => "ParallelAgg",
            AggAlgo::DenseAgg => "DenseAgg",
            AggAlgo::SparseAgg => "SparseAgg",
        }
    }
}

/// A logical plan with per-operator algorithm annotations.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Scan a base relation.
    Scan {
        /// Base relation name.
        relation: String,
    },
    /// Filter by conjunctive equality predicates.
    Select {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Predicates.
        predicates: Vec<(VarId, Value)>,
    },
    /// Product join with a chosen algorithm.
    Join {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// The join implementation.
        algo: JoinAlgo,
    },
    /// Marginalization with a chosen algorithm.
    GroupBy {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Grouping variables.
        group_vars: Vec<VarId>,
        /// The aggregation implementation.
        algo: AggAlgo,
    },
    /// Fused join→marginalize: `GroupBy_X(left ⨝* right)` contracted in
    /// one operator, never materializing the join intermediate — the
    /// canonical VE elimination step. Runs the dense fused kernel when
    /// both sides densify ([`crate::dense::join_agg_auto`]) and the
    /// fused hash pipeline otherwise; accounts as one join *plus* one
    /// group-by so stats reconcile with the unfused plan.
    JoinAgg {
        /// Left input.
        left: Box<PhysicalPlan>,
        /// Right input.
        right: Box<PhysicalPlan>,
        /// Grouping variables (must drop at least the join-only ones for
        /// the planner to pick this node; any subset of the union schema
        /// is executable).
        group_vars: Vec<VarId>,
    },
}

impl PhysicalPlan {
    /// Annotate a logical plan, consulting `choose_join` / `choose_agg` at
    /// each operator (called bottom-up).
    pub fn from_logical(
        plan: &Plan,
        choose_join: &mut impl FnMut(&Plan, &Plan) -> JoinAlgo,
        choose_agg: &mut impl FnMut(&Plan, &[VarId]) -> AggAlgo,
    ) -> PhysicalPlan {
        match plan {
            Plan::Scan { relation } => PhysicalPlan::Scan {
                relation: relation.clone(),
            },
            Plan::Select { input, predicates } => PhysicalPlan::Select {
                input: Box::new(Self::from_logical(input, choose_join, choose_agg)),
                predicates: predicates.clone(),
            },
            Plan::Join { left, right } => {
                let algo = choose_join(left, right);
                PhysicalPlan::Join {
                    left: Box::new(Self::from_logical(left, choose_join, choose_agg)),
                    right: Box::new(Self::from_logical(right, choose_join, choose_agg)),
                    algo,
                }
            }
            Plan::GroupBy { input, group_vars } => {
                let algo = choose_agg(input, group_vars);
                PhysicalPlan::GroupBy {
                    input: Box::new(Self::from_logical(input, choose_join, choose_agg)),
                    group_vars: group_vars.clone(),
                    algo,
                }
            }
        }
    }

    /// Annotate with hash operators everywhere (the default pipeline).
    pub fn default_hash(plan: &Plan) -> PhysicalPlan {
        Self::from_logical(plan, &mut |_, _| JoinAlgo::Hash, &mut |_, _| {
            AggAlgo::HashAgg
        })
    }

    /// The plan's nesting depth (a scan is depth 1), computed without
    /// recursion so adversarially deep plans can be rejected against
    /// [`crate::MAX_PLAN_DEPTH`] before evaluation.
    pub fn depth(&self) -> usize {
        let mut max = 0;
        let mut stack = vec![(self, 1usize)];
        while let Some((node, d)) = stack.pop() {
            max = max.max(d);
            match node {
                PhysicalPlan::Scan { .. } => {}
                PhysicalPlan::Select { input, .. } | PhysicalPlan::GroupBy { input, .. } => {
                    stack.push((input, d + 1));
                }
                PhysicalPlan::Join { left, right, .. }
                | PhysicalPlan::JoinAgg { left, right, .. } => {
                    stack.push((left, d + 1));
                    stack.push((right, d + 1));
                }
            }
        }
        max
    }

    /// The underlying logical plan (strip annotations).
    pub fn to_logical(&self) -> Plan {
        match self {
            PhysicalPlan::Scan { relation } => Plan::scan(relation.clone()),
            PhysicalPlan::Select { input, predicates } => {
                Plan::select(input.to_logical(), predicates.clone())
            }
            PhysicalPlan::Join { left, right, .. } => {
                Plan::join(left.to_logical(), right.to_logical())
            }
            PhysicalPlan::GroupBy {
                input, group_vars, ..
            } => Plan::group_by(input.to_logical(), group_vars.clone()),
            PhysicalPlan::JoinAgg {
                left,
                right,
                group_vars,
            } => Plan::group_by(
                Plan::join(left.to_logical(), right.to_logical()),
                group_vars.clone(),
            ),
        }
    }

    /// Count operators annotated with sort-based algorithms.
    pub fn sort_operator_count(&self) -> usize {
        match self {
            PhysicalPlan::Scan { .. } => 0,
            PhysicalPlan::Select { input, .. } => input.sort_operator_count(),
            PhysicalPlan::Join {
                left, right, algo, ..
            } => {
                (*algo == JoinAlgo::SortMerge) as usize
                    + left.sort_operator_count()
                    + right.sort_operator_count()
            }
            PhysicalPlan::GroupBy { input, algo, .. } => {
                (*algo == AggAlgo::SortAgg) as usize + input.sort_operator_count()
            }
            PhysicalPlan::JoinAgg { left, right, .. } => {
                left.sort_operator_count() + right.sort_operator_count()
            }
        }
    }

    /// Count operators that spill (sort-based operators and the Grace
    /// join; the parallel operators partition in memory, they do not
    /// spill).
    pub fn spill_operator_count(&self) -> usize {
        match self {
            PhysicalPlan::Scan { .. } => 0,
            PhysicalPlan::Select { input, .. } => input.spill_operator_count(),
            PhysicalPlan::Join {
                left, right, algo, ..
            } => {
                matches!(algo, JoinAlgo::SortMerge | JoinAlgo::Grace { .. }) as usize
                    + left.spill_operator_count()
                    + right.spill_operator_count()
            }
            PhysicalPlan::GroupBy { input, algo, .. } => {
                (*algo == AggAlgo::SortAgg) as usize + input.spill_operator_count()
            }
            PhysicalPlan::JoinAgg { left, right, .. } => {
                left.spill_operator_count() + right.spill_operator_count()
            }
        }
    }

    /// Count operators annotated with parallel algorithms.
    pub fn parallel_operator_count(&self) -> usize {
        match self {
            PhysicalPlan::Scan { .. } => 0,
            PhysicalPlan::Select { input, .. } => input.parallel_operator_count(),
            PhysicalPlan::Join {
                left, right, algo, ..
            } => {
                matches!(algo, JoinAlgo::Parallel { .. }) as usize
                    + left.parallel_operator_count()
                    + right.parallel_operator_count()
            }
            PhysicalPlan::GroupBy { input, algo, .. } => {
                matches!(algo, AggAlgo::ParallelAgg { .. }) as usize
                    + input.parallel_operator_count()
            }
            PhysicalPlan::JoinAgg { left, right, .. } => {
                left.parallel_operator_count() + right.parallel_operator_count()
            }
        }
    }

    /// Count operators annotated with dense algorithms.
    pub fn dense_operator_count(&self) -> usize {
        match self {
            PhysicalPlan::Scan { .. } => 0,
            PhysicalPlan::Select { input, .. } => input.dense_operator_count(),
            PhysicalPlan::Join {
                left, right, algo, ..
            } => {
                (*algo == JoinAlgo::Dense) as usize
                    + left.dense_operator_count()
                    + right.dense_operator_count()
            }
            PhysicalPlan::GroupBy { input, algo, .. } => {
                (*algo == AggAlgo::DenseAgg) as usize + input.dense_operator_count()
            }
            // The fused node is chosen from a dense join + dense agg
            // pair and dispatches to the dense fused kernel first, so it
            // counts as both.
            PhysicalPlan::JoinAgg { left, right, .. } => {
                2 + left.dense_operator_count() + right.dense_operator_count()
            }
        }
    }

    /// Count operators annotated with sparse-tensor algorithms.
    pub fn sparse_operator_count(&self) -> usize {
        match self {
            PhysicalPlan::Scan { .. } => 0,
            PhysicalPlan::Select { input, .. } => input.sparse_operator_count(),
            PhysicalPlan::Join {
                left, right, algo, ..
            } => {
                (*algo == JoinAlgo::SparseTensor) as usize
                    + left.sparse_operator_count()
                    + right.sparse_operator_count()
            }
            PhysicalPlan::GroupBy { input, algo, .. } => {
                (*algo == AggAlgo::SparseAgg) as usize + input.sparse_operator_count()
            }
            PhysicalPlan::JoinAgg { left, right, .. } => {
                left.sparse_operator_count() + right.sparse_operator_count()
            }
        }
    }

    /// Count the real work operators (joins and group-bys) in the
    /// subtree. The concurrent subplan scheduler only forks a worker for
    /// a subtree that contains at least one — spawning a thread to run a
    /// bare scan or selection costs more than it saves.
    pub fn operator_count(&self) -> usize {
        match self {
            PhysicalPlan::Scan { .. } => 0,
            PhysicalPlan::Select { input, .. } => input.operator_count(),
            PhysicalPlan::Join { left, right, .. } => {
                1 + left.operator_count() + right.operator_count()
            }
            PhysicalPlan::GroupBy { input, .. } => 1 + input.operator_count(),
            // One join plus one group-by, performed as one contraction.
            PhysicalPlan::JoinAgg { left, right, .. } => {
                2 + left.operator_count() + right.operator_count()
            }
        }
    }

    /// Names of the base relations scanned anywhere in this subtree, in
    /// sorted order.
    pub fn scan_set(&self) -> std::collections::BTreeSet<String> {
        let mut out = std::collections::BTreeSet::new();
        let mut stack = vec![self];
        while let Some(node) = stack.pop() {
            match node {
                PhysicalPlan::Scan { relation } => {
                    out.insert(relation.clone());
                }
                PhysicalPlan::Select { input, .. } | PhysicalPlan::GroupBy { input, .. } => {
                    stack.push(input);
                }
                PhysicalPlan::Join { left, right, .. }
                | PhysicalPlan::JoinAgg { left, right, .. } => {
                    stack.push(left);
                    stack.push(right);
                }
            }
        }
        out
    }

    /// Whether any scan in this subtree names a relation for which
    /// `touched` returns true.
    fn touches(&self, touched: &dyn Fn(&str) -> bool) -> bool {
        match self {
            PhysicalPlan::Scan { relation } => touched(relation),
            PhysicalPlan::Select { input, .. } | PhysicalPlan::GroupBy { input, .. } => {
                input.touches(touched)
            }
            PhysicalPlan::Join { left, right, .. }
            | PhysicalPlan::JoinAgg { left, right, .. } => {
                left.touches(touched) || right.touches(touched)
            }
        }
    }

    /// Partition this plan into a shared trunk and a residual frontier.
    ///
    /// Every *maximal* subtree that (a) contains at least one real work
    /// operator (join or group-by — the same threshold the concurrent
    /// scheduler uses) and (b) scans no relation for which `touched`
    /// returns true is handed to `assign`, which returns the synthetic
    /// scan name the caller will serve that subtree's materialized output
    /// under. The returned residual plan has each such subtree replaced by
    /// `Scan { relation: <assigned name> }`; untouched scans and bare
    /// selections below the operator threshold are left in place (they are
    /// cheap, and the provider resolves their base names unchanged).
    ///
    /// The whole-plan case is included: if nothing is touched the entire
    /// plan becomes one trunk scan. `assign` is the caller's memo hook —
    /// structurally identical subtrees (the full `Debug` rendering is a
    /// faithful structural key) should be assigned the same name so their
    /// output is computed once per batch.
    pub fn extract_shared(
        &self,
        touched: &dyn Fn(&str) -> bool,
        assign: &mut dyn FnMut(&PhysicalPlan) -> String,
    ) -> PhysicalPlan {
        if self.operator_count() >= 1 && !self.touches(touched) {
            return PhysicalPlan::Scan {
                relation: assign(self),
            };
        }
        match self {
            PhysicalPlan::Scan { .. } => self.clone(),
            PhysicalPlan::Select { input, predicates } => PhysicalPlan::Select {
                input: Box::new(input.extract_shared(touched, assign)),
                predicates: predicates.clone(),
            },
            PhysicalPlan::Join { left, right, algo } => PhysicalPlan::Join {
                left: Box::new(left.extract_shared(touched, assign)),
                right: Box::new(right.extract_shared(touched, assign)),
                algo: *algo,
            },
            PhysicalPlan::GroupBy {
                input,
                group_vars,
                algo,
            } => PhysicalPlan::GroupBy {
                input: Box::new(input.extract_shared(touched, assign)),
                group_vars: group_vars.clone(),
                algo: *algo,
            },
            PhysicalPlan::JoinAgg {
                left,
                right,
                group_vars,
            } => PhysicalPlan::JoinAgg {
                left: Box::new(left.extract_shared(touched, assign)),
                right: Box::new(right.extract_shared(touched, assign)),
                group_vars: group_vars.clone(),
            },
        }
    }

    /// Render as an indented tree with algorithm annotations.
    pub fn render(&self, var_name: &dyn Fn(VarId) -> String) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, var_name);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, var_name: &dyn Fn(VarId) -> String) {
        let indent = "  ".repeat(depth);
        match self {
            PhysicalPlan::Scan { relation } => {
                out.push_str(&format!("{indent}Scan {relation}\n"));
            }
            PhysicalPlan::Select { input, predicates } => {
                let preds: Vec<String> = predicates
                    .iter()
                    .map(|(v, c)| format!("{}={}", var_name(*v), c))
                    .collect();
                out.push_str(&format!("{indent}Select [{}]\n", preds.join(", ")));
                input.render_into(out, depth + 1, var_name);
            }
            PhysicalPlan::Join { left, right, algo } => {
                out.push_str(&format!("{indent}ProductJoin ({algo:?})\n"));
                left.render_into(out, depth + 1, var_name);
                right.render_into(out, depth + 1, var_name);
            }
            PhysicalPlan::GroupBy {
                input,
                group_vars,
                algo,
            } => {
                let vars: Vec<String> = group_vars.iter().map(|&v| var_name(v)).collect();
                out.push_str(&format!("{indent}GroupBy [{}] ({algo:?})\n", vars.join(", ")));
                input.render_into(out, depth + 1, var_name);
            }
            PhysicalPlan::JoinAgg {
                left,
                right,
                group_vars,
            } => {
                let vars: Vec<String> = group_vars.iter().map(|&v| var_name(v)).collect();
                out.push_str(&format!("{indent}JoinAgg [{}] (Fused)\n", vars.join(", ")));
                left.render_into(out, depth + 1, var_name);
                right.render_into(out, depth + 1, var_name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn logical() -> Plan {
        Plan::group_by(
            Plan::join(Plan::scan("a"), Plan::group_by(Plan::scan("b"), vec![v(1)])),
            vec![v(0)],
        )
    }

    #[test]
    fn default_is_all_hash() {
        let p = PhysicalPlan::default_hash(&logical());
        assert_eq!(p.sort_operator_count(), 0);
        assert_eq!(p.to_logical(), logical());
    }

    #[test]
    fn chooser_is_consulted_per_operator() {
        let mut joins = 0;
        let mut aggs = 0;
        let p = PhysicalPlan::from_logical(
            &logical(),
            &mut |_, _| {
                joins += 1;
                JoinAlgo::SortMerge
            },
            &mut |_, _| {
                aggs += 1;
                AggAlgo::SortAgg
            },
        );
        assert_eq!(joins, 1);
        assert_eq!(aggs, 2);
        assert_eq!(p.sort_operator_count(), 3);
    }

    #[test]
    fn parallel_annotations_are_counted_and_rendered() {
        let p = PhysicalPlan::from_logical(
            &logical(),
            &mut |_, _| JoinAlgo::Parallel { partitions: 64 },
            &mut |_, _| AggAlgo::ParallelAgg { partitions: 32 },
        );
        assert_eq!(p.parallel_operator_count(), 3);
        assert_eq!(p.spill_operator_count(), 0, "parallel ops do not spill");
        assert_eq!(p.operator_count(), 3);
        assert_eq!(p.to_logical(), logical());
        let text = p.render(&|v| format!("x{}", v.0));
        assert!(text.contains("Parallel"));
        assert!(text.contains("ParallelAgg"));
    }

    #[test]
    fn dense_annotations_are_counted_and_rendered() {
        let p = PhysicalPlan::from_logical(
            &logical(),
            &mut |_, _| JoinAlgo::Dense,
            &mut |_, _| AggAlgo::DenseAgg,
        );
        assert_eq!(p.dense_operator_count(), 3);
        assert_eq!(p.spill_operator_count(), 0, "dense ops do not spill");
        assert_eq!(p.parallel_operator_count(), 0);
        assert_eq!(p.to_logical(), logical());
        let text = p.render(&|v| format!("x{}", v.0));
        assert!(text.contains("(Dense)"));
        assert!(text.contains("(DenseAgg)"));
        assert_eq!(JoinAlgo::Dense.label(), "Dense");
        assert_eq!(AggAlgo::DenseAgg.label(), "DenseAgg");
    }

    #[test]
    fn sparse_annotations_are_counted_and_rendered() {
        let p = PhysicalPlan::from_logical(
            &logical(),
            &mut |_, _| JoinAlgo::SparseTensor,
            &mut |_, _| AggAlgo::SparseAgg,
        );
        assert_eq!(p.sparse_operator_count(), 3);
        assert_eq!(p.dense_operator_count(), 0);
        assert_eq!(p.spill_operator_count(), 0, "sparse ops do not spill");
        assert_eq!(p.to_logical(), logical());
        let text = p.render(&|v| format!("x{}", v.0));
        assert!(text.contains("(SparseTensor)"));
        assert!(text.contains("(SparseAgg)"));
        assert_eq!(JoinAlgo::SparseTensor.label(), "SparseTensor");
        assert_eq!(AggAlgo::SparseAgg.label(), "SparseAgg");
    }

    #[test]
    fn scan_set_collects_all_relations() {
        let p = PhysicalPlan::default_hash(&logical());
        let names: Vec<String> = p.scan_set().into_iter().collect();
        assert_eq!(names, vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn extract_shared_replaces_maximal_untouched_subtree() {
        // GroupBy(Join(a, GroupBy(b))) with `a` touched: the inner
        // GroupBy(Scan b) is the maximal untouched subtree with an
        // operator; `Scan a` stays in place (no operator below it).
        let p = PhysicalPlan::default_hash(&logical());
        let mut assigned = Vec::new();
        let residual = p.extract_shared(&|name| name == "a", &mut |sub| {
            assigned.push(sub.clone());
            format!("__trunk{}", assigned.len() - 1)
        });
        assert_eq!(assigned.len(), 1);
        assert_eq!(assigned[0].scan_set().into_iter().collect::<Vec<_>>(), ["b"]);
        let names: Vec<String> = residual.scan_set().into_iter().collect();
        assert_eq!(names, vec!["__trunk0".to_string(), "a".to_string()]);
        // The residual still carries the outer join + group-by.
        assert_eq!(residual.operator_count(), 2);
    }

    #[test]
    fn extract_shared_whole_plan_when_nothing_touched() {
        let p = PhysicalPlan::default_hash(&logical());
        let mut count = 0;
        let residual = p.extract_shared(&|_| false, &mut |_| {
            count += 1;
            "__root".to_string()
        });
        assert_eq!(count, 1);
        assert_eq!(
            residual,
            PhysicalPlan::Scan {
                relation: "__root".to_string()
            }
        );
    }

    #[test]
    fn extract_shared_identity_when_everything_touched() {
        let p = PhysicalPlan::default_hash(&logical());
        let residual = p.extract_shared(&|_| true, &mut |_| unreachable!("no trunk"));
        assert_eq!(residual, p);
    }

    #[test]
    fn render_includes_annotations() {
        let p = PhysicalPlan::default_hash(&logical());
        let text = p.render(&|v| format!("x{}", v.0));
        assert!(text.contains("(Hash)"));
        assert!(text.contains("(HashAgg)"));
    }
}
