use mpf_storage::{Schema, Value, VarId};

use crate::{AlgebraError, RelationProvider, Result};

/// Maximum supported plan nesting depth. Deeper plans (an adversarially
/// long left spine, say) return [`AlgebraError::PlanTooDeep`] from
/// [`Plan::schema`] and the executor instead of recursing toward a stack
/// overflow — the same cap the SQL parser puts on parenthesis nesting.
pub const MAX_PLAN_DEPTH: usize = 128;

/// A logical MPF evaluation plan: a tree of scans, selections, product
/// joins, and group-bys.
///
/// Every plan produced by the optimizers in `mpf-optimizer` is equivalent
/// (by the Generalized Distributive Law) to a plan with only join inner
/// nodes and a single `GroupBy` at the root — the `GDLPlan` space of
/// Definition 4 in the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum Plan {
    /// Scan a named base relation.
    Scan {
        /// Name of the base relation in the provider.
        relation: String,
    },
    /// Filter rows by conjunctive variable-equality predicates.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// `(variable, constant)` equality predicates, all of which must hold.
        predicates: Vec<(VarId, Value)>,
    },
    /// Product join (Definition 2) of two subplans.
    Join {
        /// Left input.
        left: Box<Plan>,
        /// Right input.
        right: Box<Plan>,
    },
    /// Marginalize onto `group_vars` with the semiring's additive aggregate.
    GroupBy {
        /// Input plan.
        input: Box<Plan>,
        /// Output variables (the grouping set).
        group_vars: Vec<VarId>,
    },
}

impl Plan {
    /// Scan constructor.
    pub fn scan(relation: impl Into<String>) -> Plan {
        Plan::Scan {
            relation: relation.into(),
        }
    }

    /// Selection constructor. With no predicates, returns the input
    /// unchanged.
    pub fn select(input: Plan, predicates: Vec<(VarId, Value)>) -> Plan {
        if predicates.is_empty() {
            return input;
        }
        Plan::Select {
            input: Box::new(input),
            predicates,
        }
    }

    /// Product-join constructor.
    pub fn join(left: Plan, right: Plan) -> Plan {
        Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// GroupBy constructor.
    pub fn group_by(input: Plan, group_vars: Vec<VarId>) -> Plan {
        Plan::GroupBy {
            input: Box::new(input),
            group_vars,
        }
    }

    /// The plan's nesting depth (a scan is depth 1). Computed with an
    /// explicit stack so arbitrarily deep plans can be measured — and then
    /// rejected — without recursing.
    pub fn depth(&self) -> usize {
        let mut max = 0;
        let mut stack = vec![(self, 1usize)];
        while let Some((node, d)) = stack.pop() {
            max = max.max(d);
            match node {
                Plan::Scan { .. } => {}
                Plan::Select { input, .. } | Plan::GroupBy { input, .. } => {
                    stack.push((input, d + 1));
                }
                Plan::Join { left, right } => {
                    stack.push((left, d + 1));
                    stack.push((right, d + 1));
                }
            }
        }
        max
    }

    /// Guard against plans nested beyond [`MAX_PLAN_DEPTH`].
    pub(crate) fn check_depth(&self) -> Result<()> {
        let depth = self.depth();
        if depth > MAX_PLAN_DEPTH {
            return Err(AlgebraError::PlanTooDeep {
                depth,
                max: MAX_PLAN_DEPTH,
            });
        }
        Ok(())
    }

    /// The plan's output schema, resolving base relations in `provider`.
    ///
    /// # Errors
    /// [`AlgebraError::PlanTooDeep`] for plans nested beyond
    /// [`MAX_PLAN_DEPTH`] (checked before the recursive walk).
    pub fn schema<P: RelationProvider>(&self, provider: &P) -> Result<Schema> {
        self.check_depth()?;
        self.schema_inner(provider)
    }

    fn schema_inner<P: RelationProvider>(&self, provider: &P) -> Result<Schema> {
        match self {
            Plan::Scan { relation } => provider
                .relation_of(relation)
                .map(|r| r.schema().clone())
                .ok_or_else(|| AlgebraError::UnknownRelation(relation.clone())),
            Plan::Select { input, .. } => input.schema_inner(provider),
            Plan::Join { left, right } => Ok(left
                .schema_inner(provider)?
                .union(&right.schema_inner(provider)?)),
            Plan::GroupBy { group_vars, .. } => Ok(Schema::new(group_vars.clone())?),
        }
    }

    /// Names of the base relations scanned by this plan, in scan order.
    pub fn base_relations(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let Plan::Scan { relation } = p {
                out.push(relation.as_str());
            }
        });
        out
    }

    /// Number of join nodes.
    pub fn join_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |p| {
            if matches!(p, Plan::Join { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Number of group-by nodes.
    pub fn group_by_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |p| {
            if matches!(p, Plan::GroupBy { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Whether the plan is *linear* (left-deep): the right input of every
    /// join contains no join node.
    pub fn is_linear(&self) -> bool {
        match self {
            Plan::Scan { .. } => true,
            Plan::Select { input, .. } | Plan::GroupBy { input, .. } => input.is_linear(),
            Plan::Join { left, right } => left.is_linear() && right.join_count() == 0,
        }
    }

    /// Visit every node pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Plan)) {
        f(self);
        match self {
            Plan::Scan { .. } => {}
            Plan::Select { input, .. } | Plan::GroupBy { input, .. } => input.visit(f),
            Plan::Join { left, right } => {
                left.visit(f);
                right.visit(f);
            }
        }
    }

    /// Render the plan as an indented `EXPLAIN`-style tree. Variable names
    /// are rendered through `var_name` (pass `|v| v.to_string()` when no
    /// catalog is at hand).
    pub fn render(&self, var_name: &dyn Fn(VarId) -> String) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0, var_name);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize, var_name: &dyn Fn(VarId) -> String) {
        let indent = "  ".repeat(depth);
        match self {
            Plan::Scan { relation } => {
                out.push_str(&format!("{indent}Scan {relation}\n"));
            }
            Plan::Select { input, predicates } => {
                let preds: Vec<String> = predicates
                    .iter()
                    .map(|(v, c)| format!("{}={}", var_name(*v), c))
                    .collect();
                out.push_str(&format!("{indent}Select [{}]\n", preds.join(", ")));
                input.render_into(out, depth + 1, var_name);
            }
            Plan::Join { left, right } => {
                out.push_str(&format!("{indent}ProductJoin\n"));
                left.render_into(out, depth + 1, var_name);
                right.render_into(out, depth + 1, var_name);
            }
            Plan::GroupBy { input, group_vars } => {
                let vars: Vec<String> = group_vars.iter().map(|&v| var_name(v)).collect();
                out.push_str(&format!("{indent}GroupBy [{}]\n", vars.join(", ")));
                input.render_into(out, depth + 1, var_name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    fn sample() -> Plan {
        // GroupBy[v1](Join(Join(a, b), GroupBy[v2](c)))
        Plan::group_by(
            Plan::join(
                Plan::join(Plan::scan("a"), Plan::scan("b")),
                Plan::group_by(Plan::scan("c"), vec![v(2)]),
            ),
            vec![v(1)],
        )
    }

    #[test]
    fn counters() {
        let p = sample();
        assert_eq!(p.join_count(), 2);
        assert_eq!(p.group_by_count(), 2);
        assert_eq!(p.base_relations(), vec!["a", "b", "c"]);
    }

    #[test]
    fn linearity() {
        let p = sample();
        assert!(p.is_linear()); // right inputs are scan/groupby(scan)
        let bushy = Plan::join(
            Plan::join(Plan::scan("a"), Plan::scan("b")),
            Plan::join(Plan::scan("c"), Plan::scan("d")),
        );
        assert!(!bushy.is_linear());
    }

    #[test]
    fn select_with_no_predicates_is_identity() {
        let p = Plan::select(Plan::scan("a"), vec![]);
        assert_eq!(p, Plan::scan("a"));
    }

    #[test]
    fn depth_counts_nesting() {
        assert_eq!(Plan::scan("a").depth(), 1);
        assert_eq!(sample().depth(), 4);
    }

    #[test]
    fn schema_rejects_too_deep_plans() {
        let mut p = Plan::scan("a");
        for _ in 0..MAX_PLAN_DEPTH + 10 {
            p = Plan::join(p, Plan::scan("a"));
        }
        let provider = std::collections::HashMap::new();
        assert!(matches!(
            p.schema(&provider),
            Err(AlgebraError::PlanTooDeep { .. })
        ));
    }

    #[test]
    fn render_shape() {
        let p = sample();
        let s = p.render(&|v| format!("x{}", v.0));
        assert!(s.contains("GroupBy [x1]"));
        assert!(s.contains("ProductJoin"));
        assert!(s.contains("Scan a"));
    }
}
