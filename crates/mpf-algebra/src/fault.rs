//! Deterministic failpoints for exercising error and fallback paths.
//!
//! Production binaries compile the checks away: without the
//! `fault-injection` cargo feature, [`check`] is an inlined `Ok(())` and
//! the registry functions do not exist. With the feature (used by the
//! dedicated CI job and the `tests/fault_injection.rs` suites), tests can
//! arm a named site to fail at its Nth invocation:
//!
//! ```ignore
//! fault::inject("product_join", 2);      // second call errors, then disarms
//! fault::inject_always("optimize::ve+"); // every call errors until cleared
//! ```
//!
//! Sites are global to the process, so tests that arm overlapping sites
//! must serialize themselves (the suites use a shared mutex). Every
//! operator entry point and the engine's optimizer call are instrumented;
//! site names are the function names (`"product_join"`, `"group_by"`,
//! `"sort_group_by"`, `"grace_join"`, `"parallel_join"`, ...), plus
//! `"optimize::<label>"` per strategy in the engine.

#[cfg(not(feature = "fault-injection"))]
use crate::Result;

#[cfg(feature = "fault-injection")]
mod registry {
    use std::collections::HashMap;
    use std::sync::Mutex;

    use crate::{AlgebraError, Result};

    #[derive(Debug, Clone, Copy)]
    enum Arm {
        /// Fail at the `nth` invocation (1-based), then disarm.
        Nth { nth: u64, seen: u64 },
        /// Fail on every invocation until cleared.
        Always,
    }

    static REGISTRY: Mutex<Option<HashMap<String, Arm>>> = Mutex::new(None);

    fn with_registry<T>(f: impl FnOnce(&mut HashMap<String, Arm>) -> T) -> T {
        let mut guard = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        f(guard.get_or_insert_with(HashMap::new))
    }

    /// Arm `site` to fail at its `nth` invocation from now (1-based),
    /// then disarm itself.
    pub fn inject(site: &str, nth: u64) {
        assert!(nth >= 1, "nth is 1-based");
        with_registry(|r| r.insert(site.to_string(), Arm::Nth { nth, seen: 0 }));
    }

    /// Arm `site` to fail on every invocation until [`clear`]ed.
    pub fn inject_always(site: &str) {
        with_registry(|r| r.insert(site.to_string(), Arm::Always));
    }

    /// Disarm `site`.
    pub fn clear(site: &str) {
        with_registry(|r| {
            r.remove(site);
        });
    }

    /// Disarm every site.
    pub fn clear_all() {
        with_registry(|r| r.clear());
    }

    /// Called by instrumented code at each site.
    pub fn check(site: &str) -> Result<()> {
        let fire = with_registry(|r| {
            let (fire, disarm) = match r.get_mut(site) {
                None => (false, false),
                Some(Arm::Always) => (true, false),
                Some(Arm::Nth { nth, seen }) => {
                    *seen += 1;
                    (*seen >= *nth, *seen >= *nth)
                }
            };
            if disarm {
                r.remove(site);
            }
            fire
        });
        if fire {
            Err(AlgebraError::FaultInjected(site.to_string()))
        } else {
            Ok(())
        }
    }
}

#[cfg(feature = "fault-injection")]
pub use registry::{check, clear, clear_all, inject, inject_always};

/// No-op without the `fault-injection` feature; the optimizer inlines and
/// removes it.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn check(_site: &str) -> Result<()> {
    Ok(())
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;
    use crate::AlgebraError;

    #[test]
    fn nth_arm_fires_once_then_disarms() {
        inject("site-a", 3);
        assert!(check("site-a").is_ok());
        assert!(check("site-a").is_ok());
        assert_eq!(
            check("site-a").unwrap_err(),
            AlgebraError::FaultInjected("site-a".into())
        );
        assert!(check("site-a").is_ok(), "disarmed after firing");
    }

    #[test]
    fn always_arm_fires_until_cleared() {
        inject_always("site-b");
        assert!(check("site-b").is_err());
        assert!(check("site-b").is_err());
        clear("site-b");
        assert!(check("site-b").is_ok());
    }

    #[test]
    fn unarmed_sites_pass() {
        assert!(check("site-c").is_ok());
    }
}
