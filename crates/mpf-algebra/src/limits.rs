//! Execution guardrails: resource budgets and cooperative cancellation.
//!
//! A disk-resident MPF workload can materialize intermediates that dwarf
//! the inputs (a bad elimination order on the supply-chain view multiplies
//! domains together), so the executor accepts an [`ExecLimits`] describing
//! how much work a query is allowed to do:
//!
//! * **per-operator output rows** — caps any single intermediate,
//! * **total materialized cells** — caps the sum over all operators of
//!   `rows × (arity + 1)` (the `+ 1` counts the measure column), the
//!   closest analogue of "pages written" in the paper's cost model,
//! * **wall-clock deadline** — elapsed time from executor start,
//! * **cancellation** — a [`CancelToken`] another thread can trip.
//!
//! Limits are enforced through an [`ExecBudget`] created once per
//! execution. Operators receive `Option<&ExecBudget>`; the `None` path
//! (no limits configured) costs nothing. Deadline and cancellation are
//! polled every [`TICK_INTERVAL`] rows via [`Ticker`] so tight loops stay
//! tight.
//!
//! Tripping a budget returns [`AlgebraError::ResourceExhausted`] (or
//! [`AlgebraError::Cancelled`]) — never a panic — so the engine can fall
//! back to a cheaper strategy or surface a typed error.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::{AlgebraError, Result};

/// Which [`ExecLimits`] budget tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// A single operator produced more output rows than allowed.
    OutputRows,
    /// The execution materialized more total cells than allowed.
    TotalCells,
    /// The wall-clock deadline passed.
    WallClock,
    /// A worker-thread reservation could not be satisfied (the shared
    /// [`BudgetPool`] had no thread tokens left).
    Threads,
}

impl ResourceKind {
    /// The unit the limit/consumed figures of this budget are measured
    /// in; error messages print it so a shed/reject response names not
    /// just *that* a budget tripped but *what* ran out.
    pub fn unit(&self) -> &'static str {
        match self {
            ResourceKind::OutputRows => "rows",
            ResourceKind::TotalCells => "cells",
            ResourceKind::WallClock => "ms",
            ResourceKind::Threads => "threads",
        }
    }
}

impl std::fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResourceKind::OutputRows => write!(f, "per-operator output-row"),
            ResourceKind::TotalCells => write!(f, "total materialized-cell"),
            ResourceKind::WallClock => write!(f, "wall-clock"),
            ResourceKind::Threads => write!(f, "worker-thread"),
        }
    }
}

/// Cooperative cancellation handle. Cloning shares the flag, so one clone
/// can be handed to another thread (or a signal handler) while the
/// executor polls the other.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; takes effect at the executor's
    /// next poll (every [`TICK_INTERVAL`] rows).
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Declarative resource budgets for one query execution. All limits are
/// optional; [`ExecLimits::default`] enforces nothing.
#[derive(Debug, Clone, Default)]
pub struct ExecLimits {
    /// Maximum rows any single operator may output.
    pub max_output_rows: Option<u64>,
    /// Maximum total cells (`rows × (arity + 1)`) materialized across all
    /// operators of the execution, scans included.
    pub max_total_cells: Option<u64>,
    /// Maximum wall-clock time from executor start.
    pub timeout: Option<Duration>,
    /// External cancellation handle.
    pub cancel: Option<CancelToken>,
    /// Worker threads for the parallel operators and for concurrent
    /// subplan scheduling. `None` resolves through [`default_threads`]
    /// (the `MPF_THREADS` environment variable, else the machine's
    /// available parallelism). A knob, not a budget: it never trips an
    /// error and is ignored by [`ExecLimits::is_unlimited`].
    pub threads: Option<usize>,
    /// Operator workspace in bytes, used to derive partition counts for
    /// the partitioned (Grace/parallel) operators. `None` resolves to
    /// [`DEFAULT_WORKSPACE_BYTES`]. A knob, not a budget (ignored by
    /// [`ExecLimits::is_unlimited`]).
    pub workspace_bytes: Option<u64>,
}

impl ExecLimits {
    /// No limits — identical to `ExecLimits::default()`, reads better at
    /// call sites.
    pub fn none() -> ExecLimits {
        ExecLimits::default()
    }

    /// Cap the rows any single operator may output.
    pub fn with_max_output_rows(mut self, rows: u64) -> ExecLimits {
        self.max_output_rows = Some(rows);
        self
    }

    /// Cap the total cells materialized by the execution.
    pub fn with_max_total_cells(mut self, cells: u64) -> ExecLimits {
        self.max_total_cells = Some(cells);
        self
    }

    /// Set a wall-clock deadline counted from executor start.
    pub fn with_timeout(mut self, timeout: Duration) -> ExecLimits {
        self.timeout = Some(timeout);
        self
    }

    /// Attach a cancellation token (keep a clone to trip it).
    pub fn with_cancel_token(mut self, token: CancelToken) -> ExecLimits {
        self.cancel = Some(token);
        self
    }

    /// Set the worker-thread count for parallel execution (clamped to at
    /// least 1).
    pub fn with_threads(mut self, threads: usize) -> ExecLimits {
        self.threads = Some(threads.max(1));
        self
    }

    /// Set the operator workspace used to size partitioned operators.
    pub fn with_workspace_bytes(mut self, bytes: u64) -> ExecLimits {
        self.workspace_bytes = Some(bytes.max(1));
        self
    }

    /// The configured thread count, or the environment default
    /// ([`default_threads`]).
    pub fn effective_threads(&self) -> usize {
        self.threads.map_or_else(default_threads, |t| t.max(1))
    }

    /// The configured workspace, or [`DEFAULT_WORKSPACE_BYTES`].
    pub fn effective_workspace_bytes(&self) -> u64 {
        self.workspace_bytes.unwrap_or(DEFAULT_WORKSPACE_BYTES)
    }

    /// True when no limit of any kind is configured — the executor skips
    /// budget tracking entirely. `threads` and `workspace_bytes` are
    /// tuning knobs, not budgets, so they do not count: setting only them
    /// still allocates no budget.
    pub fn is_unlimited(&self) -> bool {
        self.max_output_rows.is_none()
            && self.max_total_cells.is_none()
            && self.timeout.is_none()
            && self.cancel.is_none()
    }
}

/// Operator workspace assumed when [`ExecLimits::workspace_bytes`] is
/// unset: 16 MiB, the same order as the `work_mem` default of the paper's
/// modified PostgreSQL 8.1.
pub const DEFAULT_WORKSPACE_BYTES: u64 = 16 << 20;

/// Worker threads used when [`ExecLimits::threads`] is unset: the
/// `MPF_THREADS` environment variable when it parses as a positive
/// integer, else the machine's available parallelism.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("MPF_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// How many rows a tight loop processes between deadline/cancel polls.
pub const TICK_INTERVAL: u32 = 1024;

/// Runtime budget tracker for one execution. Counters are atomic so the
/// partitioned parallel operators can charge from worker threads.
#[derive(Debug)]
pub struct ExecBudget {
    limits: ExecLimits,
    start: Instant,
    total_cells: AtomicU64,
}

impl ExecBudget {
    /// Start tracking against `limits`. The wall clock starts now.
    pub fn new(limits: ExecLimits) -> ExecBudget {
        ExecBudget {
            limits,
            start: Instant::now(),
            total_cells: AtomicU64::new(0),
        }
    }

    /// The limits this budget enforces.
    pub fn limits(&self) -> &ExecLimits {
        &self.limits
    }

    /// Total cells charged so far.
    pub fn cells_used(&self) -> u64 {
        self.total_cells.load(Ordering::Relaxed)
    }

    /// Check one operator's cumulative output-row count against the
    /// per-operator row cap.
    pub fn check_rows(&self, rows: u64) -> Result<()> {
        if let Some(limit) = self.limits.max_output_rows {
            if rows > limit {
                return Err(AlgebraError::ResourceExhausted {
                    resource: ResourceKind::OutputRows,
                    limit,
                    observed: rows,
                });
            }
        }
        Ok(())
    }

    /// Add `cells` to the global materialized-cell counter and check the
    /// cap. Atomic, so parallel operators may charge concurrently.
    pub fn charge_cells(&self, cells: u64) -> Result<()> {
        let total = self
            .total_cells
            .fetch_add(cells, Ordering::Relaxed)
            .saturating_add(cells);
        if let Some(limit) = self.limits.max_total_cells {
            if total > limit {
                return Err(AlgebraError::ResourceExhausted {
                    resource: ResourceKind::TotalCells,
                    limit,
                    observed: total,
                });
            }
        }
        Ok(())
    }

    /// Charge one operator's complete output in one call: `rows` rows of
    /// `arity` variables (plus the measure column). Equivalent to
    /// [`ExecBudget::check_rows`] + [`ExecBudget::charge_cells`].
    pub fn charge_output(&self, rows: u64, arity: usize) -> Result<()> {
        self.check_rows(rows)?;
        self.charge_cells(rows.saturating_mul(arity as u64 + 1))
    }

    /// Poll the deadline and the cancellation token. Cheap but not free;
    /// tight loops should go through a [`Ticker`].
    pub fn checkpoint(&self) -> Result<()> {
        if let Some(token) = &self.limits.cancel {
            if token.is_cancelled() {
                return Err(AlgebraError::Cancelled);
            }
        }
        if let Some(timeout) = self.limits.timeout {
            let elapsed = self.start.elapsed();
            if elapsed > timeout {
                return Err(AlgebraError::ResourceExhausted {
                    resource: ResourceKind::WallClock,
                    limit: timeout.as_millis() as u64,
                    observed: elapsed.as_millis() as u64,
                });
            }
        }
        Ok(())
    }
}

/// Per-operator guard carried on the stack of each operator's row loops.
/// Batches budget traffic so the common case is one branch and one or two
/// increments per row — and nothing at all when no budget is installed.
///
/// * [`OpGuard::poll`] — call once per *input* row scanned; polls
///   deadline/cancellation every [`TICK_INTERVAL`] calls.
/// * [`OpGuard::produced`] — call once per *output* row emitted; checks
///   the row cap and charges cells every [`TICK_INTERVAL`] rows (so an
///   exploding operator is stopped at most `TICK_INTERVAL` rows past its
///   budget, long before the intermediate is fully materialized).
/// * [`OpGuard::finish`] — call once before returning the output; settles
///   the remaining uncharged rows.
#[derive(Debug)]
pub struct OpGuard<'a> {
    budget: Option<&'a ExecBudget>,
    cells_per_row: u64,
    rows: u64,
    pending_rows: u32,
    poll_count: u32,
}

impl<'a> OpGuard<'a> {
    /// A guard for one operator whose output rows have `arity` variables
    /// (cells per row = `arity + 1`, counting the measure column).
    /// `budget: None` makes every method a no-op.
    pub fn new(budget: Option<&'a ExecBudget>, arity: usize) -> OpGuard<'a> {
        OpGuard {
            budget,
            cells_per_row: arity as u64 + 1,
            rows: 0,
            pending_rows: 0,
            poll_count: 0,
        }
    }

    #[inline]
    fn poll_budget(&mut self, budget: &ExecBudget) -> Result<()> {
        self.poll_count += 1;
        if self.poll_count >= TICK_INTERVAL {
            self.poll_count = 0;
            budget.checkpoint()?;
        }
        Ok(())
    }

    fn flush(&mut self, budget: &ExecBudget) -> Result<()> {
        budget.check_rows(self.rows)?;
        budget.charge_cells(self.pending_rows as u64 * self.cells_per_row)?;
        self.pending_rows = 0;
        Ok(())
    }

    /// Count one scanned input row (deadline/cancel polling only).
    #[inline]
    pub fn poll(&mut self) -> Result<()> {
        if let Some(budget) = self.budget {
            self.poll_budget(budget)?;
        }
        Ok(())
    }

    /// Count one emitted output row.
    #[inline]
    pub fn produced(&mut self) -> Result<()> {
        if let Some(budget) = self.budget {
            self.rows += 1;
            self.pending_rows += 1;
            if self.pending_rows >= TICK_INTERVAL {
                self.flush(budget)?;
            }
            self.poll_budget(budget)?;
        }
        Ok(())
    }

    /// Count `n` emitted output rows at once — the block-granular
    /// equivalent of `n` calls to [`OpGuard::produced`], used by the
    /// chunked dense kernels whose inner loops run guard-free over
    /// contiguous runs. Flushes on the same cumulative-row thresholds,
    /// so a budget trip reports the same observed row count either way
    /// (callers pass blocks well under [`TICK_INTERVAL`] multiples, e.g.
    /// one tile row or a few thousand cells at a time).
    #[inline]
    pub fn produced_many(&mut self, n: u64) -> Result<()> {
        if let Some(budget) = self.budget {
            self.rows += n;
            self.pending_rows = self.pending_rows.saturating_add(n.min(u32::MAX as u64) as u32);
            if self.pending_rows >= TICK_INTERVAL {
                self.flush(budget)?;
            }
            self.poll_budget(budget)?;
        }
        Ok(())
    }

    /// Settle outstanding charges; call once before returning the
    /// operator's output.
    pub fn finish(mut self) -> Result<()> {
        if let Some(budget) = self.budget {
            self.flush(budget)?;
            budget.checkpoint()?;
        }
        Ok(())
    }
}

/// A process-wide admission pool of execution resources, shared by every
/// in-flight query of a multi-tenant service.
///
/// Individual queries are bounded by their own [`ExecLimits`]; the pool
/// bounds the *sum*: a service grants each admitted query a lease of
/// materialized-cell budget and worker threads, and the grant comes back
/// when the lease drops — even on panic or early return. When the pool
/// cannot satisfy a request it returns the same typed
/// [`AlgebraError::ResourceExhausted`] the per-query budgets use, with
/// `limit` = the pool's capacity and `observed` = what granting the
/// request would have consumed, so a shed response can tell the tenant
/// exactly which resource ran out and by how much.
///
/// The pool deliberately has no queue: callers that want to wait-then-
/// retry implement their own bounded queue on top (the `mpf-serve`
/// admission controller does), keeping "no capacity right now" a cheap,
/// non-blocking check here.
#[derive(Debug)]
pub struct BudgetPool {
    total_cells: u64,
    total_threads: usize,
    state: Mutex<PoolState>,
}

#[derive(Debug)]
struct PoolState {
    cells_in_use: u64,
    threads_in_use: usize,
}

/// A grant of pooled resources; returns them to the [`BudgetPool`] on
/// drop.
#[derive(Debug)]
pub struct BudgetLease {
    pool: Arc<BudgetPool>,
    cells: u64,
    threads: usize,
}

impl BudgetPool {
    /// A pool of `total_cells` materialized cells and `total_threads`
    /// worker threads (both clamped to at least 1).
    pub fn new(total_cells: u64, total_threads: usize) -> Arc<BudgetPool> {
        Arc::new(BudgetPool {
            total_cells: total_cells.max(1),
            total_threads: total_threads.max(1),
            state: Mutex::new(PoolState {
                cells_in_use: 0,
                threads_in_use: 0,
            }),
        })
    }

    /// Total cell capacity.
    pub fn total_cells(&self) -> u64 {
        self.total_cells
    }

    /// Total thread capacity.
    pub fn total_threads(&self) -> usize {
        self.total_threads
    }

    /// Cells currently leased.
    pub fn cells_in_use(&self) -> u64 {
        self.lock().cells_in_use
    }

    /// Threads currently leased.
    pub fn threads_in_use(&self) -> usize {
        self.lock().threads_in_use
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to lease `cells` and `threads` from the pool. Non-blocking:
    /// the typed error says which resource is exhausted (threads are
    /// checked first — a query that cannot run at all is reported before
    /// its memory ask). A request for more than the pool's *capacity*
    /// can never succeed; the error's figures make that visible
    /// (`observed > limit` even with an idle pool).
    pub fn try_lease(
        self: &Arc<Self>,
        cells: u64,
        threads: usize,
    ) -> Result<BudgetLease> {
        let threads = threads.max(1);
        let mut st = self.lock();
        let threads_would_use = st.threads_in_use.saturating_add(threads);
        if threads_would_use > self.total_threads {
            return Err(AlgebraError::ResourceExhausted {
                resource: ResourceKind::Threads,
                limit: self.total_threads as u64,
                observed: threads_would_use as u64,
            });
        }
        let cells_would_use = st.cells_in_use.saturating_add(cells);
        if cells_would_use > self.total_cells {
            return Err(AlgebraError::ResourceExhausted {
                resource: ResourceKind::TotalCells,
                limit: self.total_cells,
                observed: cells_would_use,
            });
        }
        st.cells_in_use = cells_would_use;
        st.threads_in_use = threads_would_use;
        drop(st);
        Ok(BudgetLease {
            pool: Arc::clone(self),
            cells,
            threads,
        })
    }
}

impl BudgetLease {
    /// Cells granted by this lease.
    pub fn cells(&self) -> u64 {
        self.cells
    }

    /// Threads granted by this lease.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// [`ExecLimits`] bounding a query to exactly this lease's grant.
    pub fn limits(&self) -> ExecLimits {
        ExecLimits::none()
            .with_max_total_cells(self.cells)
            .with_threads(self.threads)
    }
}

impl Drop for BudgetLease {
    fn drop(&mut self) {
        let mut st = self.pool.lock();
        st.cells_in_use = st.cells_in_use.saturating_sub(self.cells);
        st.threads_in_use = st.threads_in_use.saturating_sub(self.threads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_limits_enforce_nothing() {
        let budget = ExecBudget::new(ExecLimits::none());
        assert!(ExecLimits::none().is_unlimited());
        budget.charge_output(u64::MAX, 100).unwrap();
        budget.checkpoint().unwrap();
    }

    #[test]
    fn parallelism_knobs_are_not_budgets() {
        let l = ExecLimits::none().with_threads(4).with_workspace_bytes(1 << 20);
        assert!(l.is_unlimited(), "knobs alone allocate no budget");
        assert_eq!(l.effective_threads(), 4);
        assert_eq!(l.effective_workspace_bytes(), 1 << 20);
        assert!(ExecLimits::none().effective_threads() >= 1);
        assert_eq!(
            ExecLimits::none().effective_workspace_bytes(),
            DEFAULT_WORKSPACE_BYTES
        );
    }

    #[test]
    fn row_cap_trips() {
        let budget = ExecBudget::new(ExecLimits::none().with_max_output_rows(10));
        budget.charge_output(10, 2).unwrap();
        let err = budget.charge_output(11, 2).unwrap_err();
        assert_eq!(
            err,
            AlgebraError::ResourceExhausted {
                resource: ResourceKind::OutputRows,
                limit: 10,
                observed: 11,
            }
        );
    }

    #[test]
    fn cell_cap_accumulates_across_operators() {
        let budget = ExecBudget::new(ExecLimits::none().with_max_total_cells(100));
        budget.charge_output(10, 4).unwrap(); // 50 cells
        budget.charge_output(10, 4).unwrap(); // 100 cells: at the limit
        let err = budget.charge_output(1, 0).unwrap_err();
        match err {
            AlgebraError::ResourceExhausted {
                resource: ResourceKind::TotalCells,
                limit: 100,
                observed,
            } => assert_eq!(observed, 101),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn cancellation_is_observed_at_checkpoint() {
        let token = CancelToken::new();
        let budget = ExecBudget::new(ExecLimits::none().with_cancel_token(token.clone()));
        budget.checkpoint().unwrap();
        token.cancel();
        assert_eq!(budget.checkpoint().unwrap_err(), AlgebraError::Cancelled);
        assert!(token.is_cancelled());
    }

    #[test]
    fn deadline_trips_after_elapsing() {
        let budget = ExecBudget::new(ExecLimits::none().with_timeout(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(2));
        match budget.checkpoint().unwrap_err() {
            AlgebraError::ResourceExhausted {
                resource: ResourceKind::WallClock,
                ..
            } => {}
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn guard_polls_at_interval() {
        let token = CancelToken::new();
        let budget = ExecBudget::new(ExecLimits::none().with_cancel_token(token.clone()));
        let mut guard = OpGuard::new(Some(&budget), 2);
        token.cancel();
        // Cancellation is only seen at the tick interval, not every row.
        for _ in 0..TICK_INTERVAL - 1 {
            guard.poll().unwrap();
        }
        assert_eq!(guard.poll().unwrap_err(), AlgebraError::Cancelled);
    }

    #[test]
    fn guard_stops_exploding_output_early() {
        let budget = ExecBudget::new(ExecLimits::none().with_max_output_rows(100));
        let mut guard = OpGuard::new(Some(&budget), 3);
        let mut emitted = 0u64;
        let err = loop {
            match guard.produced() {
                Ok(()) => emitted += 1,
                Err(e) => break e,
            }
        };
        assert!(matches!(
            err,
            AlgebraError::ResourceExhausted {
                resource: ResourceKind::OutputRows,
                limit: 100,
                ..
            }
        ));
        // Tripped at the first flush after the cap, not after materializing
        // an unbounded intermediate.
        assert!(emitted < TICK_INTERVAL as u64 + 100);
    }

    #[test]
    fn guard_finish_settles_remainder() {
        let budget = ExecBudget::new(ExecLimits::none().with_max_total_cells(10));
        let mut guard = OpGuard::new(Some(&budget), 4); // 5 cells per row
        guard.produced().unwrap();
        guard.produced().unwrap();
        // 10 cells: at the limit, settled only at finish.
        guard.finish().unwrap();
        assert_eq!(budget.cells_used(), 10);

        let mut guard = OpGuard::new(Some(&budget), 0);
        guard.produced().unwrap();
        assert!(guard.finish().is_err(), "11th cell trips the cap");
    }

    #[test]
    fn no_budget_guard_is_free() {
        let mut guard = OpGuard::new(None, 7);
        for _ in 0..10 * TICK_INTERVAL {
            guard.poll().unwrap();
            guard.produced().unwrap();
        }
        guard.finish().unwrap();
    }

    #[test]
    fn pool_leases_and_returns_on_drop() {
        let pool = BudgetPool::new(100, 4);
        let a = pool.try_lease(60, 2).unwrap();
        assert_eq!(pool.cells_in_use(), 60);
        assert_eq!(pool.threads_in_use(), 2);
        let b = pool.try_lease(40, 2).unwrap();
        assert_eq!(pool.cells_in_use(), 100);
        drop(a);
        assert_eq!(pool.cells_in_use(), 40);
        assert_eq!(pool.threads_in_use(), 2);
        drop(b);
        assert_eq!(pool.cells_in_use(), 0);
        assert_eq!(pool.threads_in_use(), 0);
    }

    #[test]
    fn pool_exhaustion_is_typed_per_resource() {
        let pool = BudgetPool::new(100, 2);
        let _held = pool.try_lease(90, 2).unwrap();
        // Threads run out first and are reported first.
        match pool.try_lease(5, 1).unwrap_err() {
            AlgebraError::ResourceExhausted {
                resource: ResourceKind::Threads,
                limit: 2,
                observed: 3,
            } => {}
            other => panic!("unexpected error: {other:?}"),
        }
        drop(_held);
        let _one_thread = pool.try_lease(90, 1).unwrap();
        match pool.try_lease(20, 1).unwrap_err() {
            AlgebraError::ResourceExhausted {
                resource: ResourceKind::TotalCells,
                limit: 100,
                observed: 110,
            } => {}
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn lease_limits_mirror_the_grant() {
        let pool = BudgetPool::new(1000, 8);
        let lease = pool.try_lease(250, 3).unwrap();
        let limits = lease.limits();
        assert_eq!(limits.max_total_cells, Some(250));
        assert_eq!(limits.effective_threads(), 3);
    }

    #[test]
    fn resource_kinds_name_their_units() {
        assert_eq!(ResourceKind::OutputRows.unit(), "rows");
        assert_eq!(ResourceKind::TotalCells.unit(), "cells");
        assert_eq!(ResourceKind::WallClock.unit(), "ms");
        assert_eq!(ResourceKind::Threads.unit(), "threads");
    }
}
