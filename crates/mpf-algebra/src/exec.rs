use mpf_semiring::SemiringKind;
use mpf_storage::FunctionalRelation;

use crate::limits::{ExecBudget, ExecLimits};
use crate::{ops, AlgebraError, ExecStats, Plan, RelationProvider, Result};

/// Evaluates logical [`Plan`]s against a [`RelationProvider`] under a chosen
/// semiring, accumulating [`ExecStats`].
///
/// The executor materializes every operator output (as the paper's modified
/// PostgreSQL does for group-by results inside join trees); pipelining would
/// not change the relative costs the experiments measure.
///
/// An executor built with [`Executor::with_limits`] enforces resource
/// budgets ([`ExecLimits`]) on every operator it runs; the wall clock for a
/// configured deadline starts when the executor is created.
#[derive(Debug)]
pub struct Executor<'a, P: RelationProvider> {
    provider: &'a P,
    semiring: SemiringKind,
    budget: Option<ExecBudget>,
}

impl<'a, P: RelationProvider> Executor<'a, P> {
    /// Create an executor over `provider` with the given semiring and no
    /// resource limits.
    pub fn new(provider: &'a P, semiring: SemiringKind) -> Self {
        Self {
            provider,
            semiring,
            budget: None,
        }
    }

    /// Create an executor enforcing `limits`. Unlimited `limits` behave
    /// exactly like [`Executor::new`] (no tracking overhead).
    pub fn with_limits(provider: &'a P, semiring: SemiringKind, limits: ExecLimits) -> Self {
        Self {
            provider,
            semiring,
            budget: (!limits.is_unlimited()).then(|| ExecBudget::new(limits)),
        }
    }

    /// The active semiring.
    pub fn semiring(&self) -> SemiringKind {
        self.semiring
    }

    /// The budget tracker, when limits are configured.
    pub fn budget(&self) -> Option<&ExecBudget> {
        self.budget.as_ref()
    }

    /// Execute `plan`, returning the result relation and work counters.
    pub fn execute(&self, plan: &Plan) -> Result<(FunctionalRelation, ExecStats)> {
        let mut stats = ExecStats::default();
        let rel = self.run(plan, &mut stats)?;
        Ok((rel, stats))
    }

    /// Resolve a scan, charging the budget for the materialized relation.
    fn scan(&self, relation: &str, stats: &mut ExecStats) -> Result<FunctionalRelation> {
        let rel = self
            .provider
            .relation_of(relation)
            .ok_or_else(|| AlgebraError::UnknownRelation(relation.to_string()))?;
        stats.rows_scanned += rel.len() as u64;
        stats.pages_io += rel.estimated_pages();
        if let Some(budget) = &self.budget {
            budget.charge_output(rel.len() as u64, rel.schema().arity())?;
            budget.checkpoint()?;
        }
        Ok(rel.clone())
    }

    fn run(&self, plan: &Plan, stats: &mut ExecStats) -> Result<FunctionalRelation> {
        let budget = self.budget.as_ref();
        match plan {
            Plan::Scan { relation } => self.scan(relation, stats),
            Plan::Select { input, predicates } => {
                let in_rel = self.run(input, stats)?;
                let out = ops::select_eq_budgeted(&in_rel, predicates, budget)?;
                self.account(stats, &[&in_rel], &out);
                stats.selects += 1;
                Ok(out)
            }
            Plan::Join { left, right } => {
                let l = self.run(left, stats)?;
                let r = self.run(right, stats)?;
                let out = ops::product_join_budgeted(self.semiring, &l, &r, budget)?;
                self.account(stats, &[&l, &r], &out);
                stats.joins += 1;
                Ok(out)
            }
            Plan::GroupBy { input, group_vars } => {
                let in_rel = self.run(input, stats)?;
                let out = ops::group_by_budgeted(self.semiring, &in_rel, group_vars, budget)?;
                self.account(stats, &[&in_rel], &out);
                stats.group_bys += 1;
                Ok(out)
            }
        }
    }

    /// Execute a physical plan (operator algorithms chosen per node).
    pub fn execute_physical(
        &self,
        plan: &crate::PhysicalPlan,
    ) -> Result<(FunctionalRelation, ExecStats)> {
        let mut stats = ExecStats::default();
        let rel = self.run_physical(plan, &mut stats)?;
        Ok((rel, stats))
    }

    fn run_physical(
        &self,
        plan: &crate::PhysicalPlan,
        stats: &mut ExecStats,
    ) -> Result<FunctionalRelation> {
        use crate::{AggAlgo, JoinAlgo, PhysicalPlan};
        let budget = self.budget.as_ref();
        match plan {
            PhysicalPlan::Scan { relation } => self.scan(relation, stats),
            PhysicalPlan::Select { input, predicates } => {
                let in_rel = self.run_physical(input, stats)?;
                let out = ops::select_eq_budgeted(&in_rel, predicates, budget)?;
                self.account(stats, &[&in_rel], &out);
                stats.selects += 1;
                Ok(out)
            }
            PhysicalPlan::Join { left, right, algo } => {
                let l = self.run_physical(left, stats)?;
                let r = self.run_physical(right, stats)?;
                let out = match algo {
                    JoinAlgo::Hash => {
                        ops::product_join_budgeted(self.semiring, &l, &r, budget)?
                    }
                    JoinAlgo::SortMerge => {
                        crate::sort_ops::merge_join_budgeted(self.semiring, &l, &r, budget)?
                    }
                    JoinAlgo::Grace { partitions } => crate::partitioned::grace_join_budgeted(
                        self.semiring,
                        &l,
                        &r,
                        *partitions,
                        budget,
                    )?,
                };
                self.account(stats, &[&l, &r], &out);
                stats.joins += 1;
                Ok(out)
            }
            PhysicalPlan::GroupBy {
                input,
                group_vars,
                algo,
            } => {
                let in_rel = self.run_physical(input, stats)?;
                let out = match algo {
                    AggAlgo::HashAgg => {
                        ops::group_by_budgeted(self.semiring, &in_rel, group_vars, budget)?
                    }
                    AggAlgo::SortAgg => crate::sort_ops::sort_group_by_budgeted(
                        self.semiring,
                        &in_rel,
                        group_vars,
                        budget,
                    )?,
                };
                self.account(stats, &[&in_rel], &out);
                stats.group_bys += 1;
                Ok(out)
            }
        }
    }

    fn account(
        &self,
        stats: &mut ExecStats,
        inputs: &[&FunctionalRelation],
        output: &FunctionalRelation,
    ) {
        for rel in inputs {
            stats.rows_processed += rel.len() as u64;
            stats.pages_io += rel.estimated_pages();
        }
        stats.rows_processed += output.len() as u64;
        stats.pages_io += output.estimated_pages();
        stats.max_intermediate_rows = stats.max_intermediate_rows.max(output.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RelationStore;
    use mpf_semiring::approx_eq;
    use mpf_storage::{Catalog, Schema, VarId};

    fn store() -> (Catalog, RelationStore, VarId, VarId, VarId) {
        let mut c = Catalog::new();
        let a = c.add_var("a", 2).unwrap();
        let b = c.add_var("b", 2).unwrap();
        let d = c.add_var("d", 2).unwrap();
        let mut s = RelationStore::new();
        s.insert(
            FunctionalRelation::from_rows(
                "r1",
                Schema::new(vec![a, b]).unwrap(),
                [
                    (vec![0, 0], 1.0),
                    (vec![0, 1], 2.0),
                    (vec![1, 0], 3.0),
                    (vec![1, 1], 4.0),
                ],
            )
            .unwrap(),
        );
        s.insert(
            FunctionalRelation::from_rows(
                "r2",
                Schema::new(vec![b, d]).unwrap(),
                [
                    (vec![0, 0], 10.0),
                    (vec![0, 1], 20.0),
                    (vec![1, 0], 30.0),
                    (vec![1, 1], 40.0),
                ],
            )
            .unwrap(),
        );
        (c, s, a, b, d)
    }

    #[test]
    fn executes_full_plan() {
        let (_, s, _, _, d) = store();
        let exec = Executor::new(&s, SemiringKind::SumProduct);
        let plan = Plan::group_by(Plan::join(Plan::scan("r1"), Plan::scan("r2")), vec![d]);
        let (out, stats) = exec.execute(&plan).unwrap();
        assert!(approx_eq(out.lookup(&[0]).unwrap(), 220.0));
        assert!(approx_eq(out.lookup(&[1]).unwrap(), 320.0));
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.group_bys, 1);
        assert_eq!(stats.rows_scanned, 8);
        assert!(stats.rows_processed > 0);
        assert_eq!(stats.max_intermediate_rows, 8);
    }

    #[test]
    fn pushed_down_group_by_same_answer_less_work() {
        let (_, s, _, b, d) = store();
        let exec = Executor::new(&s, SemiringKind::SumProduct);
        let root_only = Plan::group_by(Plan::join(Plan::scan("r1"), Plan::scan("r2")), vec![d]);
        // Push a group-by onto r1 (eliminate `a` early).
        let pushed = Plan::group_by(
            Plan::join(
                Plan::group_by(Plan::scan("r1"), vec![b]),
                Plan::scan("r2"),
            ),
            vec![d],
        );
        let (out1, st1) = exec.execute(&root_only).unwrap();
        let (out2, st2) = exec.execute(&pushed).unwrap();
        assert!(out1.function_eq(&out2));
        assert!(st2.rows_processed < st1.rows_processed);
    }

    #[test]
    fn select_plan() {
        let (_, s, a, _, d) = store();
        let exec = Executor::new(&s, SemiringKind::SumProduct);
        let plan = Plan::group_by(
            Plan::join(
                Plan::select(Plan::scan("r1"), vec![(a, 0)]),
                Plan::scan("r2"),
            ),
            vec![d],
        );
        let (out, stats) = exec.execute(&plan).unwrap();
        // a=0: d=0 -> 1*10 + 2*30 = 70; d=1 -> 1*20 + 2*40 = 100.
        assert!(approx_eq(out.lookup(&[0]).unwrap(), 70.0));
        assert!(approx_eq(out.lookup(&[1]).unwrap(), 100.0));
        assert_eq!(stats.selects, 1);
    }

    #[test]
    fn unknown_relation_errors() {
        let (_, s, _, _, _) = store();
        let exec = Executor::new(&s, SemiringKind::SumProduct);
        assert!(matches!(
            exec.execute(&Plan::scan("missing")),
            Err(AlgebraError::UnknownRelation(_))
        ));
    }
}
