use std::borrow::Cow;

use mpf_semiring::SemiringKind;
use mpf_storage::FunctionalRelation;

use crate::limits::{ExecBudget, ExecLimits};
use crate::trace::{OpRepr, SpanDesc, SpanKind};
use crate::{
    ops, AggAlgo, AlgebraError, ExecContext, ExecStats, JoinAlgo, PhysicalPlan, Plan,
    RelationProvider, Result,
};

/// Evaluates plans against a [`RelationProvider`] under a chosen semiring.
///
/// There is exactly one interpreter, and it evaluates [`PhysicalPlan`]s.
/// A logical [`Plan`] handed to [`Executor::execute`] first goes through
/// the lowering pass ([`Executor::lower`]), which picks the default
/// algorithm for every operator (hash join / hash aggregation); callers
/// with a cost model lower the plan themselves (the optimizer's
/// `choose_physical`) and call [`Executor::execute_physical`]. Both paths
/// run the same code, so lowered and hand-built physical plans of the
/// same shape produce identical results *and identical [`ExecStats`]*.
///
/// Execution state — semiring, optional budget, work counters, fault
/// hooks — travels in an [`ExecContext`] threaded through every operator.
/// The executor materializes every operator output (as the paper's
/// modified PostgreSQL does for group-by results inside join trees), but
/// scans *borrow* the stored base relations (`Cow`): a scan costs no copy
/// and the budget charges a relation's cells only on its first scan.
///
/// An executor built with [`Executor::with_limits`] enforces resource
/// budgets ([`ExecLimits`]) on every operator it runs; the wall clock for
/// a configured deadline starts when the executor is created.
///
/// With more than one worker thread ([`ExecLimits::threads`] /
/// [`Executor::with_threads`]) the interpreter evaluates independent join
/// subtrees concurrently on scoped workers (bounded by a shared token
/// pool) and runs the planner's parallel operator annotations
/// ([`JoinAlgo::Parallel`], [`AggAlgo::ParallelAgg`]) partitioned across
/// the workers. Worker contexts charge the same budget and the stats
/// merge deterministically, so answers, counters, and typed errors are
/// identical at any thread count.
#[derive(Debug)]
pub struct Executor<'a, P: RelationProvider> {
    provider: &'a P,
    semiring: SemiringKind,
    budget: Option<ExecBudget>,
    threads: usize,
}

impl<'a, P: RelationProvider + Sync> Executor<'a, P> {
    /// Create an executor over `provider` with the given semiring, no
    /// resource limits, and the environment-default parallelism
    /// ([`crate::limits::default_threads`]).
    pub fn new(provider: &'a P, semiring: SemiringKind) -> Self {
        Self {
            provider,
            semiring,
            budget: None,
            threads: crate::limits::default_threads(),
        }
    }

    /// Create an executor enforcing `limits`. Unlimited `limits` behave
    /// exactly like [`Executor::new`] (no tracking overhead); the
    /// `threads` knob is honored either way.
    pub fn with_limits(provider: &'a P, semiring: SemiringKind, limits: ExecLimits) -> Self {
        let threads = limits.effective_threads();
        Self {
            provider,
            semiring,
            budget: (!limits.is_unlimited()).then(|| ExecBudget::new(limits)),
            threads,
        }
    }

    /// Override the worker-thread count (builder style).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The active semiring.
    pub fn semiring(&self) -> SemiringKind {
        self.semiring
    }

    /// The budget tracker, when limits are configured.
    pub fn budget(&self) -> Option<&ExecBudget> {
        self.budget.as_ref()
    }

    /// Lower a logical plan to a physical plan with the default algorithm
    /// (hash) for every operator.
    ///
    /// # Errors
    /// [`AlgebraError::PlanTooDeep`] for plans nested beyond
    /// [`crate::MAX_PLAN_DEPTH`].
    pub fn lower(&self, plan: &Plan) -> Result<PhysicalPlan> {
        plan.check_depth()?;
        Ok(PhysicalPlan::default_hash(plan))
    }

    /// Execute a logical plan (lowering pass + the physical interpreter),
    /// returning the result relation and work counters.
    pub fn execute(&self, plan: &Plan) -> Result<(FunctionalRelation, ExecStats)> {
        let physical = self.lower(plan)?;
        self.execute_physical(&physical)
    }

    /// Execute a physical plan (operator algorithms chosen per node).
    pub fn execute_physical(
        &self,
        plan: &PhysicalPlan,
    ) -> Result<(FunctionalRelation, ExecStats)> {
        let mut cx =
            ExecContext::with_budget(self.semiring, self.budget.as_ref()).with_threads(self.threads);
        let rel = self.execute_physical_in(&mut cx, plan)?;
        Ok((rel, cx.take_stats()))
    }

    /// Execute a physical plan in a caller-supplied context, so the caller
    /// keeps the accumulated [`ExecStats`] (and any budget) even when
    /// execution fails — the engine uses this to report total work across
    /// fallback attempts.
    pub fn execute_physical_in(
        &self,
        cx: &mut ExecContext<'_>,
        plan: &PhysicalPlan,
    ) -> Result<FunctionalRelation> {
        let depth = plan.depth();
        if depth > crate::MAX_PLAN_DEPTH {
            return Err(AlgebraError::PlanTooDeep {
                depth,
                max: crate::MAX_PLAN_DEPTH,
            });
        }
        Ok(self.run(cx, plan)?.into_owned())
    }

    /// Resolve a scan as a borrow of the stored relation.
    fn scan(&self, cx: &mut ExecContext<'_>, relation: &str) -> Result<&'a FunctionalRelation> {
        let rel = self
            .provider
            .relation_of(relation)
            .ok_or_else(|| AlgebraError::UnknownRelation(relation.to_string()))?;
        cx.record_scan(relation, rel)?;
        Ok(rel)
    }

    /// The single plan interpreter. Scans borrow from the provider;
    /// operator outputs are owned. Wraps every node in a trace span when
    /// the context collects them ([`crate::TraceLevel::Spans`]): the
    /// node's `record_*` accounting fills the span's row counts, the
    /// wrapper adds inclusive wall time and the failure, if any.
    fn run(
        &self,
        cx: &mut ExecContext<'_>,
        plan: &PhysicalPlan,
    ) -> Result<Cow<'a, FunctionalRelation>> {
        let threads = cx.threads();
        cx.span_open(|| span_desc(plan, threads));
        let result = self.run_node(cx, plan);
        cx.span_close(|| result.as_ref().err().map(|e| e.to_string()));
        result
    }

    /// [`Executor::run`] body, without the span bracket.
    fn run_node(
        &self,
        cx: &mut ExecContext<'_>,
        plan: &PhysicalPlan,
    ) -> Result<Cow<'a, FunctionalRelation>> {
        match plan {
            PhysicalPlan::Scan { relation } => Ok(Cow::Borrowed(self.scan(cx, relation)?)),
            PhysicalPlan::Select { input, predicates } => {
                let in_rel = self.run(cx, input)?;
                Ok(Cow::Owned(ops::select_eq(cx, &in_rel, predicates)?))
            }
            PhysicalPlan::Join { left, right, algo } => {
                let (l, r) = self.run_inputs(cx, left, right)?;
                let out = match algo {
                    JoinAlgo::Hash => ops::product_join(cx, &l, &r)?,
                    JoinAlgo::SortMerge => crate::sort_ops::merge_join(cx, &l, &r)?,
                    JoinAlgo::Grace { partitions } => {
                        // The planner's count came from cardinality
                        // estimates; re-derive from the actual build side
                        // and the context's workspace so each partition
                        // really fits, keeping the planner's count as a
                        // floor.
                        let build = if l.len() <= r.len() { &*l } else { &*r };
                        let derived = crate::partitioned::grace_partitions(
                            build.len(),
                            build.row_bytes(),
                            cx.workspace_bytes(),
                        )
                        .max(*partitions);
                        cx.span_set_partitions(derived);
                        crate::partitioned::grace_join(cx, &l, &r, derived)?
                    }
                    JoinAlgo::Parallel { partitions } => crate::partitioned::parallel_join_parts(
                        cx,
                        &l,
                        &r,
                        cx.threads(),
                        *partitions,
                    )?,
                    JoinAlgo::Dense => crate::dense::join(cx, &l, &r)?,
                    JoinAlgo::SparseTensor => crate::sparse::join(cx, &l, &r)?,
                };
                Ok(Cow::Owned(out))
            }
            PhysicalPlan::GroupBy {
                input,
                group_vars,
                algo,
            } => {
                let in_rel = self.run(cx, input)?;
                let out = match algo {
                    AggAlgo::HashAgg => ops::group_by(cx, &in_rel, group_vars)?,
                    AggAlgo::SortAgg => crate::sort_ops::sort_group_by(cx, &in_rel, group_vars)?,
                    AggAlgo::ParallelAgg { partitions } => {
                        crate::partitioned::parallel_group_by_parts(
                            cx,
                            &in_rel,
                            group_vars,
                            cx.threads(),
                            *partitions,
                        )?
                    }
                    AggAlgo::DenseAgg => crate::dense::agg(cx, &in_rel, group_vars)?,
                    AggAlgo::SparseAgg => crate::sparse::agg(cx, &in_rel, group_vars)?,
                };
                Ok(Cow::Owned(out))
            }
            PhysicalPlan::JoinAgg {
                left,
                right,
                group_vars,
            } => {
                let (l, r) = self.run_inputs(cx, left, right)?;
                Ok(Cow::Owned(crate::dense::join_agg_auto(
                    cx, &l, &r, group_vars,
                )?))
            }
        }
    }

    /// Evaluate a join's two input subtrees, concurrently when it pays:
    /// both subtrees must contain real work (at least one join or
    /// group-by each) and a worker token must be available from the
    /// context's shared pool. The right subtree runs on a scoped worker
    /// against a forked context (shared budget and scan ledger, own
    /// stats); the left runs inline. Stats are absorbed and errors
    /// inspected left-before-right, so counters and error precedence are
    /// identical to sequential execution.
    #[allow(clippy::type_complexity)]
    fn run_inputs(
        &self,
        cx: &mut ExecContext<'_>,
        left: &PhysicalPlan,
        right: &PhysicalPlan,
    ) -> Result<(Cow<'a, FunctionalRelation>, Cow<'a, FunctionalRelation>)> {
        if left.operator_count() == 0 || right.operator_count() == 0 || !cx.try_acquire_worker() {
            let l = self.run(cx, left)?;
            let r = self.run(cx, right)?;
            return Ok((l, r));
        }
        let mut rcx = cx.fork();
        let (lres, rres, rstats, rtrace) = std::thread::scope(|scope| {
            let handle = scope.spawn(move || {
                let r = self.run(&mut rcx, right);
                (r, rcx.take_stats(), rcx.take_trace())
            });
            let l = self.run(cx, left);
            let (r, rstats, rtrace) = handle.join().unwrap_or_else(|_| {
                (
                    Err(AlgebraError::Internal("subplan worker panicked".into())),
                    ExecStats::default(),
                    crate::TraceTree::default(),
                )
            });
            (l, r, rstats, rtrace)
        });
        cx.release_worker();
        cx.absorb(rstats);
        // The left subtree's spans attached inline (under the open join
        // span); grafting the worker's spans after them reproduces the
        // sequential left-then-right order exactly.
        cx.absorb_trace(rtrace);
        Ok((lres?, rres?))
    }
}

/// Describe a plan node for its trace span: kind, display label, and the
/// planner's partition/worker annotations. Only called with tracing on.
fn span_desc(plan: &PhysicalPlan, threads: usize) -> SpanDesc {
    match plan {
        PhysicalPlan::Scan { relation } => {
            SpanDesc::op(SpanKind::Scan, format!("Scan {relation}"))
        }
        PhysicalPlan::Select { .. } => SpanDesc::op(SpanKind::Select, "Select"),
        PhysicalPlan::Join { algo, .. } => SpanDesc {
            kind: SpanKind::Join,
            label: format!("ProductJoin ({})", algo.label()),
            partitions: match algo {
                JoinAlgo::Grace { partitions } | JoinAlgo::Parallel { partitions } => {
                    Some(*partitions)
                }
                _ => None,
            },
            workers: matches!(algo, JoinAlgo::Parallel { .. }).then_some(threads),
            // Left `Rows` even for the dense/sparse annotations: the
            // operator may fall back at runtime, and record-time merging
            // overwrites the representation only when a kernel actually
            // ran.
            repr: OpRepr::Rows,
        },
        PhysicalPlan::GroupBy { algo, .. } => SpanDesc {
            kind: SpanKind::GroupBy,
            label: format!("GroupBy ({})", algo.label()),
            partitions: match algo {
                AggAlgo::ParallelAgg { partitions } => Some(*partitions),
                _ => None,
            },
            workers: matches!(algo, AggAlgo::ParallelAgg { .. }).then_some(threads),
            repr: OpRepr::Rows,
        },
        // The fused contraction accounts through `record_join_agg_ex`,
        // which records under the GroupBy kind (the node's output is the
        // marginal) and tags the span `fused=true` at run time.
        PhysicalPlan::JoinAgg { .. } => {
            SpanDesc::op(SpanKind::GroupBy, "JoinAgg (Fused)")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RelationStore;
    use mpf_semiring::approx_eq;
    use mpf_storage::{Catalog, Schema, VarId};

    fn store() -> (Catalog, RelationStore, VarId, VarId, VarId) {
        let mut c = Catalog::new();
        let a = c.add_var("a", 2).unwrap();
        let b = c.add_var("b", 2).unwrap();
        let d = c.add_var("d", 2).unwrap();
        let mut s = RelationStore::new();
        s.insert(
            FunctionalRelation::from_rows(
                "r1",
                Schema::new(vec![a, b]).unwrap(),
                [
                    (vec![0, 0], 1.0),
                    (vec![0, 1], 2.0),
                    (vec![1, 0], 3.0),
                    (vec![1, 1], 4.0),
                ],
            )
            .unwrap(),
        );
        s.insert(
            FunctionalRelation::from_rows(
                "r2",
                Schema::new(vec![b, d]).unwrap(),
                [
                    (vec![0, 0], 10.0),
                    (vec![0, 1], 20.0),
                    (vec![1, 0], 30.0),
                    (vec![1, 1], 40.0),
                ],
            )
            .unwrap(),
        );
        (c, s, a, b, d)
    }

    #[test]
    fn executes_full_plan() {
        let (_, s, _, _, d) = store();
        let exec = Executor::new(&s, SemiringKind::SumProduct);
        let plan = Plan::group_by(Plan::join(Plan::scan("r1"), Plan::scan("r2")), vec![d]);
        let (out, stats) = exec.execute(&plan).unwrap();
        assert!(approx_eq(out.lookup(&[0]).unwrap(), 220.0));
        assert!(approx_eq(out.lookup(&[1]).unwrap(), 320.0));
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.group_bys, 1);
        assert_eq!(stats.rows_scanned, 8);
        assert!(stats.rows_processed > 0);
        assert_eq!(stats.max_intermediate_rows, 8);
    }

    #[test]
    fn pushed_down_group_by_same_answer_less_work() {
        let (_, s, _, b, d) = store();
        let exec = Executor::new(&s, SemiringKind::SumProduct);
        let root_only = Plan::group_by(Plan::join(Plan::scan("r1"), Plan::scan("r2")), vec![d]);
        // Push a group-by onto r1 (eliminate `a` early).
        let pushed = Plan::group_by(
            Plan::join(
                Plan::group_by(Plan::scan("r1"), vec![b]),
                Plan::scan("r2"),
            ),
            vec![d],
        );
        let (out1, st1) = exec.execute(&root_only).unwrap();
        let (out2, st2) = exec.execute(&pushed).unwrap();
        assert!(out1.function_eq(&out2));
        assert!(st2.rows_processed < st1.rows_processed);
    }

    #[test]
    fn select_plan() {
        let (_, s, a, _, d) = store();
        let exec = Executor::new(&s, SemiringKind::SumProduct);
        let plan = Plan::group_by(
            Plan::join(
                Plan::select(Plan::scan("r1"), vec![(a, 0)]),
                Plan::scan("r2"),
            ),
            vec![d],
        );
        let (out, stats) = exec.execute(&plan).unwrap();
        // a=0: d=0 -> 1*10 + 2*30 = 70; d=1 -> 1*20 + 2*40 = 100.
        assert!(approx_eq(out.lookup(&[0]).unwrap(), 70.0));
        assert!(approx_eq(out.lookup(&[1]).unwrap(), 100.0));
        assert_eq!(stats.selects, 1);
    }

    #[test]
    fn unknown_relation_errors() {
        let (_, s, _, _, _) = store();
        let exec = Executor::new(&s, SemiringKind::SumProduct);
        assert!(matches!(
            exec.execute(&Plan::scan("missing")),
            Err(AlgebraError::UnknownRelation(_))
        ));
    }

    #[test]
    fn lowered_plan_matches_hand_built_physical() {
        // The acceptance check for the single interpreter: executing a
        // logical plan (through lowering) and the equivalent hand-built
        // physical plan must agree on the answer AND on every work counter.
        let (_, s, _, b, d) = store();
        let exec = Executor::new(&s, SemiringKind::SumProduct);
        let logical = Plan::group_by(
            Plan::join(
                Plan::group_by(Plan::scan("r1"), vec![b]),
                Plan::scan("r2"),
            ),
            vec![d],
        );
        let hand_built = PhysicalPlan::GroupBy {
            input: Box::new(PhysicalPlan::Join {
                left: Box::new(PhysicalPlan::GroupBy {
                    input: Box::new(PhysicalPlan::Scan {
                        relation: "r1".into(),
                    }),
                    group_vars: vec![b],
                    algo: AggAlgo::HashAgg,
                }),
                right: Box::new(PhysicalPlan::Scan {
                    relation: "r2".into(),
                }),
                algo: JoinAlgo::Hash,
            }),
            group_vars: vec![d],
            algo: AggAlgo::HashAgg,
        };
        let (lowered_out, lowered_stats) = exec.execute(&logical).unwrap();
        let (hand_out, hand_stats) = exec.execute_physical(&hand_built).unwrap();
        assert!(lowered_out.function_eq(&hand_out));
        assert_eq!(lowered_stats, hand_stats);
    }

    #[test]
    fn too_deep_plans_error_before_evaluation() {
        let (_, s, _, _, d) = store();
        let exec = Executor::new(&s, SemiringKind::SumProduct);
        let mut plan = Plan::scan("r1");
        for _ in 0..crate::MAX_PLAN_DEPTH + 20 {
            plan = Plan::join(plan, Plan::scan("r2"));
        }
        let plan = Plan::group_by(plan, vec![d]);
        assert!(matches!(
            exec.execute(&plan),
            Err(AlgebraError::PlanTooDeep { .. })
        ));
        // The same guard protects a directly-supplied physical plan.
        let mut phys = PhysicalPlan::Scan {
            relation: "r1".into(),
        };
        for _ in 0..crate::MAX_PLAN_DEPTH + 20 {
            phys = PhysicalPlan::Join {
                left: Box::new(phys),
                right: Box::new(PhysicalPlan::Scan {
                    relation: "r2".into(),
                }),
                algo: JoinAlgo::Hash,
            };
        }
        assert!(matches!(
            exec.execute_physical(&phys),
            Err(AlgebraError::PlanTooDeep { .. })
        ));
    }

    #[test]
    fn repeated_scans_budget_charged_once() {
        // Joining r1 with itself scans the same stored relation twice;
        // only the first scan charges the budget (there is no clone to
        // pay for), so a budget sized for one copy + the join output
        // suffices.
        let (_, s, a, b, _) = store();
        // One scan charge (4 rows × 3 cells = 12) + join output
        // (r1 ⨝* r1 = 4 rows × 3 = 12) + group-by output (4 rows × 3 =
        // 12) totals 36 cells; charging the second scan too would need
        // 48. A 40-cell budget therefore fits only with single charging.
        let exec = Executor::with_limits(
            &s,
            SemiringKind::SumProduct,
            ExecLimits::none().with_max_total_cells(40),
        );
        let plan = Plan::group_by(Plan::join(Plan::scan("r1"), Plan::scan("r1")), vec![a, b]);
        let (out, stats) = exec.execute(&plan).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(stats.rows_scanned, 8, "stats still count both scans");
    }
}
