//! Physical operators over functional relations.
//!
//! Every operator takes a [`&mut ExecContext`](crate::ExecContext) as its
//! first argument — the one seam through which the semiring, resource
//! budgets ([`crate::ExecLimits`]: per-operator row caps, global cell
//! caps, deadlines, cancellation), work accounting ([`crate::ExecStats`]),
//! and fault-injection sites all flow. Budget enforcement goes through an
//! [`OpGuard`], stopping an exploding intermediate within
//! [`crate::limits::TICK_INTERVAL`] rows of its budget instead of
//! materializing it; with no limits configured the guard costs nothing.
//! Semiring accumulations additionally reject measures that leave the
//! semiring's carrier (NaN, or an infinity that is not the additive
//! identity) with [`AlgebraError::NonFiniteMeasure`].
//!
//! The [`raw`] submodule keeps the pre-context signatures
//! (`product_join(sr, &l, &r)`) as thin compatibility wrappers for tests
//! and oracles *inside this crate*; code in other crates must thread a
//! context (CI rejects `ops::raw::` calls outside `mpf-algebra`).

use mpf_semiring::SemiringKind;
use mpf_storage::{FunctionalRelation, Key, Schema, Value, VarId};

use crate::limits::{ExecBudget, OpGuard};
use crate::{AlgebraError, ExecContext, Result};

/// Product join (`⨝*`, Definition 2): natural join on shared variables with
/// measures combined by the semiring's multiplicative operation.
///
/// `Var(out) = Var(l) ∪ Var(r)`; the join condition is equality on
/// `Var(l) ∩ Var(r)`. When the schemas are disjoint this degenerates to a
/// cross product with multiplied measures, as the algebra requires.
///
/// Implementation: classic hash join. The smaller input is built into a hash
/// index keyed on the shared variables; the larger input probes it.
pub fn product_join(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
) -> Result<FunctionalRelation> {
    cx.fault("product_join")?;
    let out = product_join_impl(cx.semiring(), l, r, cx.budget())?;
    cx.record_join(&[l, r], &out);
    Ok(out)
}

/// [`product_join`] body: budget-guarded, no fault site or accounting.
/// Shared with the partitioned variants, whose worker threads cannot
/// borrow the context.
pub(crate) fn product_join_impl(
    sr: SemiringKind,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    let out_schema = l.schema().union(r.schema());
    let mut guard = OpGuard::new(budget, out_schema.arity());
    let shared = l.schema().intersect(r.schema());

    // Choose build/probe sides by cardinality.
    let (build, probe) = if l.len() <= r.len() { (l, r) } else { (r, l) };
    let build_shared = build.schema().positions(shared.vars())?;
    let probe_shared = probe.schema().positions(shared.vars())?;

    // For each output column, record which side and position it comes from.
    // Prefer the probe side so the inner loop copies contiguously when
    // possible; correctness is unaffected because shared columns are equal.
    enum Src {
        Probe(usize),
        Build(usize),
    }
    let srcs: Vec<Src> = out_schema
        .iter()
        .map(|v| {
            if let Ok(p) = probe.schema().position(v) {
                Ok(Src::Probe(p))
            } else {
                Ok(Src::Build(build.schema().position(v)?))
            }
        })
        .collect::<Result<_>>()?;

    let index = build.build_index(&build_shared);
    let mut out = FunctionalRelation::new(
        format!("({}⨝*{})", l.name(), r.name()),
        out_schema.clone(),
    );
    let mut row_buf: Vec<Value> = vec![0; out_schema.arity()];
    for i in 0..probe.len() {
        guard.poll()?;
        let prow = probe.row(i);
        let key = Key::extract(prow, &probe_shared);
        let Some(matches) = index.get(&key) else {
            continue;
        };
        let pm = probe.measure(i);
        for &j in matches {
            let brow = build.row(j as usize);
            for (c, src) in srcs.iter().enumerate() {
                row_buf[c] = match src {
                    Src::Probe(p) => prow[*p],
                    Src::Build(p) => brow[*p],
                };
            }
            out.push_row(&row_buf, sr.mul(pm, build.measure(j as usize)))?;
            guard.produced()?;
        }
    }
    guard.finish()?;
    Ok(out)
}

/// Marginalization (`GroupBy_X` with the semiring's additive aggregate,
/// Definition 3). The output schema is exactly `group_vars` (which must be a
/// subset of the input schema); measures of rows agreeing on the group
/// variables are folded with the additive operation.
///
/// With `group_vars` empty this computes the scalar total of the function.
pub fn group_by(
    cx: &mut ExecContext<'_>,
    input: &FunctionalRelation,
    group_vars: &[VarId],
) -> Result<FunctionalRelation> {
    cx.fault("group_by")?;
    let out = group_by_impl(cx.semiring(), input, group_vars, cx.budget())?;
    cx.record_group_by(&[input], &out);
    Ok(out)
}

/// [`group_by`] body: budget-guarded, no fault site or accounting.
pub(crate) fn group_by_impl(
    sr: SemiringKind,
    input: &FunctionalRelation,
    group_vars: &[VarId],
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    for &v in group_vars {
        if !input.schema().contains(v) {
            return Err(AlgebraError::GroupVarNotInInput(v));
        }
    }
    let out_schema = Schema::new(group_vars.to_vec())?;
    let positions = input.schema().positions(group_vars)?;
    let mut guard = OpGuard::new(budget, group_vars.len());

    let mut groups: std::collections::HashMap<Key, usize> =
        std::collections::HashMap::with_capacity(input.len().min(1 << 20));
    let mut out = FunctionalRelation::new(
        format!("γ({})", input.name()),
        out_schema,
    );
    let mut key_row: Vec<Value> = vec![0; group_vars.len()];
    for i in 0..input.len() {
        guard.poll()?;
        let row = input.row(i);
        let key = Key::extract(row, &positions);
        let m = input.measure(i);
        match groups.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let idx = *e.get();
                let acc = sr.add(out.measure(idx), m);
                if !sr.is_valid_accumulation(acc) {
                    return Err(AlgebraError::NonFiniteMeasure {
                        op: "group_by",
                        value: acc,
                    });
                }
                // Re-push is not possible; mutate via measures slice.
                out.set_measure(idx, acc);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                for (c, &p) in positions.iter().enumerate() {
                    key_row[c] = row[p];
                }
                e.insert(out.len());
                out.push_row(&key_row, m)?;
                guard.produced()?;
            }
        }
    }
    guard.finish()?;
    Ok(out)
}

/// Fused join→marginalize: `GroupBy_X(l ⨝* r)` computed in one pass,
/// folding each join match straight into its group accumulator without
/// materializing the intermediate join — the canonical VE elimination
/// step, where `X` drops the join-only variables.
///
/// Bit-identical to the unfused hash pipeline: the probe loop visits
/// matches in exactly [`product_join`]'s order (build = smaller side,
/// probe-major emission, `mul(probe, build)`), and groups accumulate in
/// production order with first-occurrence output order, exactly like
/// [`group_by`]. Only the budget differs — the join intermediate is
/// never charged, which is the point of fusing.
pub fn join_group_by(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    group_vars: &[VarId],
) -> Result<FunctionalRelation> {
    cx.fault("join_group_by")?;
    let out = join_group_by_impl(cx.semiring(), l, r, group_vars, cx.budget())?;
    cx.record_join_agg_ex(&[l, r], &out, crate::trace::OpRepr::Rows);
    Ok(out)
}

/// [`join_group_by`] body: budget-guarded, no fault site or accounting.
fn join_group_by_impl(
    sr: SemiringKind,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    group_vars: &[VarId],
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    for &v in group_vars {
        if !l.schema().contains(v) && !r.schema().contains(v) {
            return Err(AlgebraError::GroupVarNotInInput(v));
        }
    }
    let out_schema = Schema::new(group_vars.to_vec())?;
    let mut guard = OpGuard::new(budget, out_schema.arity());
    let shared = l.schema().intersect(r.schema());

    // Same build/probe choice as the unfused join, so the match order —
    // and therefore the accumulation order — is identical.
    let (build, probe) = if l.len() <= r.len() { (l, r) } else { (r, l) };
    let build_shared = build.schema().positions(shared.vars())?;
    let probe_shared = probe.schema().positions(shared.vars())?;

    enum Src {
        Probe(usize),
        Build(usize),
    }
    let srcs: Vec<Src> = group_vars
        .iter()
        .map(|&v| {
            if let Ok(p) = probe.schema().position(v) {
                Ok(Src::Probe(p))
            } else {
                Ok(Src::Build(build.schema().position(v)?))
            }
        })
        .collect::<Result<_>>()?;
    let key_positions: Vec<usize> = (0..group_vars.len()).collect();

    let index = build.build_index(&build_shared);
    let mut groups: std::collections::HashMap<Key, usize> =
        std::collections::HashMap::with_capacity(probe.len().min(1 << 20));
    let mut out = FunctionalRelation::new(
        format!("γ(({}⨝*{}))", l.name(), r.name()),
        out_schema,
    );
    let mut key_row: Vec<Value> = vec![0; group_vars.len()];
    for i in 0..probe.len() {
        guard.poll()?;
        let prow = probe.row(i);
        let key = Key::extract(prow, &probe_shared);
        let Some(matches) = index.get(&key) else {
            continue;
        };
        let pm = probe.measure(i);
        for &j in matches {
            guard.poll()?;
            let brow = build.row(j as usize);
            for (c, src) in srcs.iter().enumerate() {
                key_row[c] = match src {
                    Src::Probe(p) => prow[*p],
                    Src::Build(p) => brow[*p],
                };
            }
            let m = sr.mul(pm, build.measure(j as usize));
            let gkey = Key::extract(&key_row, &key_positions);
            match groups.entry(gkey) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    let idx = *e.get();
                    let acc = sr.add(out.measure(idx), m);
                    if !sr.is_valid_accumulation(acc) {
                        return Err(AlgebraError::NonFiniteMeasure {
                            op: "join_group_by",
                            value: acc,
                        });
                    }
                    out.set_measure(idx, acc);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(out.len());
                    out.push_row(&key_row, m)?;
                    guard.produced()?;
                }
            }
        }
    }
    guard.finish()?;
    Ok(out)
}

/// Selection on conjunctive variable-equality predicates
/// (`where Y = c and ...`), the restriction used by the paper's
/// restricted-answer and constrained-domain query forms.
pub fn select_eq(
    cx: &mut ExecContext<'_>,
    input: &FunctionalRelation,
    predicates: &[(VarId, Value)],
) -> Result<FunctionalRelation> {
    cx.fault("select_eq")?;
    let out = select_eq_impl(input, predicates, cx.budget())?;
    cx.record_select(&[input], &out);
    Ok(out)
}

/// [`select_eq`] body: budget-guarded, no fault site or accounting.
pub(crate) fn select_eq_impl(
    input: &FunctionalRelation,
    predicates: &[(VarId, Value)],
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    let mut guard = OpGuard::new(budget, input.schema().arity());
    let positions: Vec<(usize, Value)> = predicates
        .iter()
        .map(|&(v, c)| {
            input
                .schema()
                .position(v)
                .map(|p| (p, c))
                .map_err(|_| AlgebraError::SelectVarNotInInput(v))
        })
        .collect::<Result<_>>()?;
    let mut out = FunctionalRelation::new(
        format!("σ({})", input.name()),
        input.schema().clone(),
    );
    for (row, m) in input.rows() {
        guard.poll()?;
        if positions.iter().all(|&(p, c)| row[p] == c) {
            out.push_row(row, m)?;
            guard.produced()?;
        }
    }
    guard.finish()?;
    Ok(out)
}

/// Product semijoin (`t ⋉* s`, Definition 6):
/// `t ⨝* GroupBy_U(s)` where `U = Var(t) ∩ Var(s)`.
///
/// This is the forward-pass reduction of Belief Propagation: `t` absorbs
/// `s`'s marginal over their shared variables.
pub fn product_semijoin(
    cx: &mut ExecContext<'_>,
    t: &FunctionalRelation,
    s: &FunctionalRelation,
) -> Result<FunctionalRelation> {
    cx.fault("product_semijoin")?;
    let shared = t.schema().intersect(s.schema());
    let marg = group_by(cx, s, shared.vars())?;
    let out = product_join(cx, t, &marg)?;
    Ok(out.with_name(format!("({}⋉*{})", t.name(), s.name())))
}

/// Update semijoin (`t ⋉ s`, Definition 6):
/// `t ⨝* ( GroupBy_U(s) ⨝÷ GroupBy_U(t) )` where `U = Var(t) ∩ Var(s)` and
/// `⨝÷` is the product join with division instead of multiplication.
///
/// This is the backward-pass reduction of Belief Propagation: `t` absorbs
/// the information `s` gathered, divided by `t`'s own current marginal so
/// values propagated in the forward pass are not propagated again
/// (Appendix A of the paper).
///
/// # Errors
/// [`AlgebraError::NoDivision`] if the semiring lacks a multiplicative
/// inverse.
pub fn update_semijoin(
    cx: &mut ExecContext<'_>,
    t: &FunctionalRelation,
    s: &FunctionalRelation,
) -> Result<FunctionalRelation> {
    cx.fault("update_semijoin")?;
    if !cx.semiring().has_division() {
        return Err(AlgebraError::NoDivision);
    }
    let shared = t.schema().intersect(s.schema());
    let marg_s = group_by(cx, s, shared.vars())?;
    let marg_t = group_by(cx, t, shared.vars())?;
    let ratio = divide_join(cx, &marg_s, &marg_t)?;
    let out = product_join(cx, t, &ratio)?;
    Ok(out.with_name(format!("({}⋉{})", t.name(), s.name())))
}

/// The division join (`⨝÷`): defined exactly like the product join but the
/// output measure is `l[f] / r[f]` under the semiring's partial inverse.
/// Non-commutative; `l` is the numerator.
pub fn divide_join(
    cx: &mut ExecContext<'_>,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
) -> Result<FunctionalRelation> {
    cx.fault("divide_join")?;
    let sr = cx.semiring();
    if !sr.has_division() {
        return Err(AlgebraError::NoDivision);
    }
    let out = divide_join_impl(sr, l, r, cx.budget())?;
    cx.record_join(&[l, r], &out);
    Ok(out)
}

/// [`divide_join`] body: budget-guarded, no fault site or accounting.
fn divide_join_impl(
    sr: SemiringKind,
    l: &FunctionalRelation,
    r: &FunctionalRelation,
    budget: Option<&ExecBudget>,
) -> Result<FunctionalRelation> {
    let out_schema = l.schema().union(r.schema());
    let mut guard = OpGuard::new(budget, out_schema.arity());
    let shared = l.schema().intersect(r.schema());
    let l_shared = l.schema().positions(shared.vars())?;
    let r_shared = r.schema().positions(shared.vars())?;

    // Index the right (denominator) side; iterate the left so each
    // numerator row is emitted once per matching denominator row.
    let index = r.build_index(&r_shared);
    let srcs: Vec<(bool, usize)> = out_schema
        .iter()
        .map(|v| {
            if let Ok(p) = l.schema().position(v) {
                Ok((true, p))
            } else {
                Ok((false, r.schema().position(v)?))
            }
        })
        .collect::<Result<_>>()?;

    let mut out = FunctionalRelation::new(
        format!("({}⨝÷{})", l.name(), r.name()),
        out_schema.clone(),
    );
    let mut row_buf: Vec<Value> = vec![0; out_schema.arity()];
    for i in 0..l.len() {
        guard.poll()?;
        let lrow = l.row(i);
        let key = Key::extract(lrow, &l_shared);
        let Some(matches) = index.get(&key) else {
            continue;
        };
        for &j in matches {
            let rrow = r.row(j as usize);
            for (c, &(from_l, p)) in srcs.iter().enumerate() {
                row_buf[c] = if from_l { lrow[p] } else { rrow[p] };
            }
            out.push_row(&row_buf, sr.div(l.measure(i), r.measure(j as usize)))?;
            guard.produced()?;
        }
    }
    guard.finish()?;
    Ok(out)
}

/// Evaluate the *naive* MPF plan: product-join all `relations` left to
/// right, apply equality `predicates`, then a single `GroupBy` at the root.
/// This is the reference answer every optimized plan must reproduce, and the
/// plan the unmodified CS algorithm is forced into (Figure 3).
pub fn naive_mpf(
    cx: &mut ExecContext<'_>,
    relations: &[&FunctionalRelation],
    predicates: &[(VarId, Value)],
    group_vars: &[VarId],
) -> Result<FunctionalRelation> {
    cx.fault("naive_mpf")?;
    // Apply selections on base relations where possible (pure correctness
    // shortcut: selection commutes with product join).
    let mut acc: Option<FunctionalRelation> = None;
    for &rel in relations {
        let applicable: Vec<(VarId, Value)> = predicates
            .iter()
            .copied()
            .filter(|&(v, _)| rel.schema().contains(v))
            .collect();
        let filtered = if applicable.is_empty() {
            rel.clone()
        } else {
            select_eq(cx, rel, &applicable)?
        };
        acc = Some(match acc {
            None => filtered,
            Some(a) => product_join(cx, &a, &filtered)?,
        });
    }
    let Some(acc) = acc else {
        return Err(AlgebraError::EmptyInput("naive_mpf"));
    };
    group_by(cx, &acc, group_vars)
}

/// Compatibility wrappers with the pre-[`ExecContext`] signatures
/// (`product_join(sr, &l, &r)`): each constructs a throwaway unlimited
/// context. Kept for this crate's unit tests and property-test oracles;
/// calls from other crates are rejected by CI so budget/stat/fault
/// coverage cannot be bypassed.
pub mod raw {
    use super::*;

    /// Uncontexted [`super::product_join`] (unlimited, stats discarded).
    pub fn product_join(
        sr: SemiringKind,
        l: &FunctionalRelation,
        r: &FunctionalRelation,
    ) -> Result<FunctionalRelation> {
        super::product_join(&mut ExecContext::new(sr), l, r)
    }

    /// Uncontexted [`super::group_by`] (unlimited, stats discarded).
    pub fn group_by(
        sr: SemiringKind,
        input: &FunctionalRelation,
        group_vars: &[VarId],
    ) -> Result<FunctionalRelation> {
        super::group_by(&mut ExecContext::new(sr), input, group_vars)
    }

    /// Uncontexted [`super::select_eq`] (unlimited, stats discarded).
    pub fn select_eq(
        input: &FunctionalRelation,
        predicates: &[(VarId, Value)],
    ) -> Result<FunctionalRelation> {
        super::select_eq(
            &mut ExecContext::new(SemiringKind::SumProduct),
            input,
            predicates,
        )
    }

    /// Uncontexted [`super::product_semijoin`] (unlimited, stats discarded).
    pub fn product_semijoin(
        sr: SemiringKind,
        t: &FunctionalRelation,
        s: &FunctionalRelation,
    ) -> Result<FunctionalRelation> {
        super::product_semijoin(&mut ExecContext::new(sr), t, s)
    }

    /// Uncontexted [`super::update_semijoin`] (unlimited, stats discarded).
    pub fn update_semijoin(
        sr: SemiringKind,
        t: &FunctionalRelation,
        s: &FunctionalRelation,
    ) -> Result<FunctionalRelation> {
        super::update_semijoin(&mut ExecContext::new(sr), t, s)
    }

    /// Uncontexted [`super::divide_join`] (unlimited, stats discarded).
    pub fn divide_join(
        sr: SemiringKind,
        l: &FunctionalRelation,
        r: &FunctionalRelation,
    ) -> Result<FunctionalRelation> {
        super::divide_join(&mut ExecContext::new(sr), l, r)
    }

    /// Uncontexted [`super::naive_mpf`] (unlimited, stats discarded).
    pub fn naive_mpf(
        sr: SemiringKind,
        relations: &[&FunctionalRelation],
        predicates: &[(VarId, Value)],
        group_vars: &[VarId],
    ) -> Result<FunctionalRelation> {
        super::naive_mpf(
            &mut ExecContext::new(sr),
            relations,
            predicates,
            group_vars,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // Explicit imports beat the glob, so bare `product_join(sr, ..)` in
    // the pre-context tests resolves to the compat wrappers.
    use super::raw::{
        group_by, naive_mpf, product_join, product_semijoin, select_eq, update_semijoin,
    };
    use mpf_semiring::approx_eq;
    use mpf_storage::{Catalog, Schema};

    fn setup() -> (Catalog, FunctionalRelation, FunctionalRelation) {
        let mut c = Catalog::new();
        let a = c.add_var("a", 2).unwrap();
        let b = c.add_var("b", 2).unwrap();
        let d = c.add_var("d", 2).unwrap();
        let r1 = FunctionalRelation::from_rows(
            "r1",
            Schema::new(vec![a, b]).unwrap(),
            [
                (vec![0, 0], 1.0),
                (vec![0, 1], 2.0),
                (vec![1, 0], 3.0),
                (vec![1, 1], 4.0),
            ],
        )
        .unwrap();
        let r2 = FunctionalRelation::from_rows(
            "r2",
            Schema::new(vec![b, d]).unwrap(),
            [
                (vec![0, 0], 10.0),
                (vec![0, 1], 20.0),
                (vec![1, 0], 30.0),
                (vec![1, 1], 40.0),
            ],
        )
        .unwrap();
        (c, r1, r2)
    }

    #[test]
    fn product_join_multiplies_measures() {
        let (c, r1, r2) = setup();
        let sr = SemiringKind::SumProduct;
        let j = product_join(sr, &r1, &r2).unwrap();
        assert_eq!(j.len(), 8); // 2 matches per b value on each side
        let a = c.var("a").unwrap();
        let b = c.var("b").unwrap();
        let d = c.var("d").unwrap();
        assert!(j.schema().contains(a) && j.schema().contains(b) && j.schema().contains(d));
        // (a=0,b=1) m=2 joins (b=1,d=0) m=30 -> 60.
        let pa = j.schema().position(a).unwrap();
        let pb = j.schema().position(b).unwrap();
        let pd = j.schema().position(d).unwrap();
        let found = j
            .rows()
            .find(|(row, _)| row[pa] == 0 && row[pb] == 1 && row[pd] == 0)
            .unwrap();
        assert!(approx_eq(found.1, 60.0));
    }

    #[test]
    fn product_join_is_commutative() {
        let (_, r1, r2) = setup();
        let sr = SemiringKind::SumProduct;
        let ab = product_join(sr, &r1, &r2).unwrap();
        let ba = product_join(sr, &r2, &r1).unwrap();
        assert!(ab.function_eq(&ba));
    }

    #[test]
    fn disjoint_schemas_cross_product() {
        let mut c = Catalog::new();
        let a = c.add_var("a", 2).unwrap();
        let b = c.add_var("b", 3).unwrap();
        let r1 = FunctionalRelation::from_rows(
            "r1",
            Schema::new(vec![a]).unwrap(),
            [(vec![0], 2.0), (vec![1], 3.0)],
        )
        .unwrap();
        let r2 = FunctionalRelation::from_rows(
            "r2",
            Schema::new(vec![b]).unwrap(),
            [(vec![0], 5.0), (vec![1], 7.0), (vec![2], 11.0)],
        )
        .unwrap();
        let j = product_join(SemiringKind::SumProduct, &r1, &r2).unwrap();
        assert_eq!(j.len(), 6);
        let total: f64 = j.measures().iter().sum();
        assert!(approx_eq(total, (2.0 + 3.0) * (5.0 + 7.0 + 11.0)));
    }

    #[test]
    fn group_by_marginalizes() {
        let (c, r1, _) = setup();
        let a = c.var("a").unwrap();
        let g = group_by(SemiringKind::SumProduct, &r1, &[a]).unwrap();
        assert_eq!(g.len(), 2);
        assert!(approx_eq(g.lookup(&[0]).unwrap(), 3.0));
        assert!(approx_eq(g.lookup(&[1]).unwrap(), 7.0));
    }

    #[test]
    fn group_by_empty_vars_is_total() {
        let (_, r1, _) = setup();
        let g = group_by(SemiringKind::SumProduct, &r1, &[]).unwrap();
        assert_eq!(g.len(), 1);
        assert!(approx_eq(g.measure(0), 10.0));
        let gmin = group_by(SemiringKind::MinProduct, &r1, &[]).unwrap();
        assert!(approx_eq(gmin.measure(0), 1.0));
    }

    #[test]
    fn group_by_unknown_var_errors() {
        let (_, r1, _) = setup();
        assert!(matches!(
            group_by(SemiringKind::SumProduct, &r1, &[VarId(99)]),
            Err(AlgebraError::GroupVarNotInInput(_))
        ));
    }

    #[test]
    fn select_filters() {
        let (c, r1, _) = setup();
        let a = c.var("a").unwrap();
        let s = select_eq(&r1, &[(a, 1)]).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.rows().all(|(row, _)| row[0] == 1));
        assert!(matches!(
            select_eq(&r1, &[(VarId(99), 0)]),
            Err(AlgebraError::SelectVarNotInInput(_))
        ));
    }

    #[test]
    fn gdl_pushdown_equivalence() {
        // GroupBy distributes over product join: marginalizing d out of
        // r1 ⨝* r2 equals r1 ⨝* (GroupBy_b r2).
        let (c, r1, r2) = setup();
        let sr = SemiringKind::SumProduct;
        let a = c.var("a").unwrap();
        let b = c.var("b").unwrap();

        let joined = product_join(sr, &r1, &r2).unwrap();
        let direct = group_by(sr, &joined, &[a, b]).unwrap();

        let pushed_inner = group_by(sr, &r2, &[b]).unwrap();
        let pushed = product_join(sr, &r1, &pushed_inner).unwrap();
        let pushed = group_by(sr, &pushed, &[a, b]).unwrap();

        assert!(direct.function_eq(&pushed));
    }

    #[test]
    fn product_semijoin_reduces() {
        let (c, r1, r2) = setup();
        let sr = SemiringKind::SumProduct;
        let red = product_semijoin(sr, &r1, &r2).unwrap();
        // Var(r1 ⋉* r2) = Var(r1); measure multiplied by r2's b-marginal.
        assert_eq!(red.schema().vars(), r1.schema().vars());
        let b = c.var("b").unwrap();
        let marg = group_by(sr, &r2, &[b]).unwrap();
        // b=0 marginal is 30, b=1 marginal is 70.
        assert!(approx_eq(marg.lookup(&[0]).unwrap(), 30.0));
        assert!(approx_eq(red.lookup(&[0, 0]).unwrap(), 1.0 * 30.0));
        assert!(approx_eq(red.lookup(&[1, 1]).unwrap(), 4.0 * 70.0));
    }

    #[test]
    fn update_semijoin_calibrates_chain() {
        // After t' = product_semijoin(s, t)... i.e. forward s ⋉* t then
        // backward t ⋉ s', t's marginal must equal the view marginal
        // (Definition 5) — the two-table base case of Theorem 6.
        let (c, t, s) = setup();
        let sr = SemiringKind::SumProduct;
        let s1 = product_semijoin(sr, &s, &t).unwrap(); // forward
        let t1 = update_semijoin(sr, &t, &s1).unwrap(); // backward

        let a = c.var("a").unwrap();
        let b = c.var("b").unwrap();
        let view = product_join(sr, &t, &s).unwrap();
        let want = group_by(sr, &view, &[a, b]).unwrap();
        let got = group_by(sr, &t1, &[a, b]).unwrap();
        assert!(want.function_eq(&got));
    }

    #[test]
    fn update_semijoin_requires_division() {
        let (_, r1, r2) = setup();
        assert!(matches!(
            update_semijoin(SemiringKind::BoolOrAnd, &r1, &r2),
            Err(AlgebraError::NoDivision)
        ));
    }

    #[test]
    fn naive_mpf_reference() {
        let (c, r1, r2) = setup();
        let sr = SemiringKind::SumProduct;
        let d = c.var("d").unwrap();
        let got = naive_mpf(sr, &[&r1, &r2], &[], &[d]).unwrap();
        // By hand: sum over a,b of r1(a,b)*r2(b,d).
        // d=0: b=0: (1+3)*10=40, b=1: (2+4)*30=180 -> 220.
        // d=1: b=0: (1+3)*20=80, b=1: (2+4)*40=240 -> 320.
        assert!(approx_eq(got.lookup(&[0]).unwrap(), 220.0));
        assert!(approx_eq(got.lookup(&[1]).unwrap(), 320.0));
    }

    #[test]
    fn naive_mpf_with_selection() {
        let (c, r1, r2) = setup();
        let sr = SemiringKind::SumProduct;
        let b = c.var("b").unwrap();
        let d = c.var("d").unwrap();
        let got = naive_mpf(sr, &[&r1, &r2], &[(b, 1)], &[d]).unwrap();
        // Only b=1 contributes: d=0 -> (2+4)*30=180; d=1 -> (2+4)*40=240.
        assert!(approx_eq(got.lookup(&[0]).unwrap(), 180.0));
        assert!(approx_eq(got.lookup(&[1]).unwrap(), 240.0));
    }

    #[test]
    fn min_product_join_and_group() {
        let (c, r1, r2) = setup();
        let sr = SemiringKind::MinProduct;
        let a = c.var("a").unwrap();
        let j = product_join(sr, &r1, &r2).unwrap();
        let g = group_by(sr, &j, &[a]).unwrap();
        // a=0: min over (b,d) of r1(0,b)*r2(b,d) = min(1*10,1*20,2*30,2*40) = 10.
        assert!(approx_eq(g.lookup(&[0]).unwrap(), 10.0));
        // a=1: min(3*10,3*20,4*30,4*40) = 30.
        assert!(approx_eq(g.lookup(&[1]).unwrap(), 30.0));
    }

    #[test]
    fn context_ops_accumulate_stats() {
        let (c, r1, r2) = setup();
        let mut cx = ExecContext::new(SemiringKind::SumProduct);
        let j = super::product_join(&mut cx, &r1, &r2).unwrap();
        let a = c.var("a").unwrap();
        super::group_by(&mut cx, &j, &[a]).unwrap();
        let stats = cx.stats();
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.group_bys, 1);
        // join: 4 + 4 inputs + 8 output; group-by: 8 input + 2 output.
        assert_eq!(stats.rows_processed, 26);
        assert_eq!(stats.max_intermediate_rows, 8);
    }

    #[test]
    fn composite_ops_count_their_pieces() {
        let (_, r1, r2) = setup();
        let mut cx = ExecContext::new(SemiringKind::SumProduct);
        super::update_semijoin(&mut cx, &r1, &r2).unwrap();
        // t ⋉ s = t ⨝* (γ_U(s) ⨝÷ γ_U(t)): two group-bys and two joins.
        assert_eq!(cx.stats().group_bys, 2);
        assert_eq!(cx.stats().joins, 2);
    }

    #[test]
    fn budgeted_context_trips_in_ops() {
        let (_, r1, r2) = setup();
        let mut cx = ExecContext::with_limits(
            SemiringKind::SumProduct,
            crate::ExecLimits::none().with_max_output_rows(4),
        );
        let err = super::product_join(&mut cx, &r1, &r2).unwrap_err();
        assert!(matches!(
            err,
            AlgebraError::ResourceExhausted {
                resource: crate::ResourceKind::OutputRows,
                ..
            }
        ));
    }
}
