#![warn(missing_docs)]
//! Extended relational algebra over functional relations, and its executor.
//!
//! This crate implements the operators of Section 2 and Definition 6 of the
//! paper:
//!
//! * **product join** (`⨝*`, Definition 2) — natural join on shared
//!   variables with measures combined by the semiring's multiplicative
//!   operation ([`ops::product_join`]);
//! * **marginalization** (`GroupBy_X` + additive aggregate, Definition 3) —
//!   [`ops::group_by`];
//! * **selection** on variable equality predicates ([`ops::select_eq`]),
//!   used by the restricted-answer and constrained-domain query forms of
//!   Section 3.1;
//! * **product semijoin** (`⋉*`) and **update semijoin** (`⋉`, Definition 6)
//!   — the reduction operators of Belief Propagation
//!   ([`ops::product_semijoin`], [`ops::update_semijoin`]).
//!
//! Every operator takes an [`ExecContext`] — the single carrier of
//! execution state (semiring, optional resource budget, [`ExecStats`]
//! work counters, fault-injection hooks) — so budgets and statistics
//! apply uniformly whether an operator runs inside an executor plan or
//! standalone (as the inference layer's message-passing algorithms do).
//!
//! Logical plans ([`Plan`]) are trees of these operators. The [`Executor`]
//! lowers a logical plan to a [`PhysicalPlan`] (per-operator algorithm
//! choices) and evaluates the physical plan against a
//! [`RelationProvider`], reporting [`ExecStats`] — deterministic work
//! counters (rows and simulated page IO) that the experiment harnesses
//! use alongside wall-clock time.

pub mod config;
mod context;
mod error;
mod exec;
pub mod dense;
pub mod fault;
pub mod limits;
pub mod metrics;
pub mod ops;
mod physical;
pub mod partitioned;
mod plan;
mod provider;
pub mod sort_ops;
pub mod sparse;
mod stats;
pub mod trace;

pub use config::{ConfigError, EnvKnobs};
pub use context::ExecContext;
pub use dense::{DenseMode, KernelMode};
pub use error::AlgebraError;
pub use exec::Executor;
pub use limits::{BudgetLease, BudgetPool, CancelToken, ExecBudget, ExecLimits, OpGuard, ResourceKind};
pub use metrics::MetricsRegistry;
pub use physical::{AggAlgo, JoinAlgo, PhysicalPlan};
pub use plan::{Plan, MAX_PLAN_DEPTH};
pub use provider::{Overlay, RelationProvider, RelationStore};
pub use sparse::ReprMode;
pub use stats::ExecStats;
pub use trace::{OpRepr, SpanKind, TraceLevel, TraceSpan, TraceTree};

/// Result alias for algebra operations.
pub type Result<T> = std::result::Result<T, AlgebraError>;
